// Server-side aggregate-mask decode kernels (paper §5.2).
//
// The one-shot recovery step of LightSecAgg reduces to: given the aggregate
// polynomial g (degree < U) through U known share points xs, evaluate g at
// the U-T data slots betas — for every one of the seg_len mask coordinates.
// The interchangeable kernels trade scalar precomputation against
// per-coordinate cost:
//
//   kLagrange    — textbook Lagrange weights per beta, O(U^2) scalar work per
//                  beta (O(U^2 (U-T)) total) + O(U d) vector work. Reference.
//   kBarycentric — barycentric weights (shared denominators M'(x_j)),
//                  O(U^2 + U(U-T)) scalar work, then a cache-blocked
//                  (U-T) x U x seg_len field GEMM (the fused
//                  axpy_accumulate kernel of field/field_vec.h: split-word
//                  lazy accumulation on 32-bit fields, 3-limb lazy or
//                  Shoup on 64-bit fields).
//   kNtt         — legacy per-coordinate fast interpolation + multipoint
//                  evaluation over a subproduct tree, O(U log^2 U) per
//                  coordinate with per-coordinate Newton inversions and
//                  allocations. Kept as the tested reference for the
//                  batched plane.
//   kBatchedNtt  — the batched decode plane (coding/decode_plan.h): the
//                  subproduct trees, Newton inverses, twiddle and operand
//                  transforms are built once per (xs, betas) plan and all
//                  seg_len coordinates stream through cache-blocked batched
//                  interpolation + evaluation — the paper's Table 5
//                  complexity class with setup amortized across the block
//                  (and across rounds when the plan is cached).
//   kAuto        — picks kBarycentric / kBatchedNtt from (U, U-T, seg_len)
//                  using the measured crossover (decode_plan.h::resolve).
//
// All kernels take the shares as *row views* (one pointer per responder) so
// flat arenas (field/flat_matrix.h), nested vectors and wire buffers all
// decode without copying, and accept a sys::ExecPolicy that fans the
// coordinate range out across a thread pool. All strategies produce
// bit-identical results under every policy (tests/decode_strategy_test.cpp,
// tests/parallel_codec_test.cpp).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "coding/decode_plan.h"
#include "coding/decode_strategy.h"
#include "coding/lagrange.h"
#include "coding/ntt.h"
#include "coding/poly.h"
#include "common/error.h"
#include "field/field_vec.h"
#include "sys/exec_policy.h"

namespace lsa::coding {

/// Adapts a nested share container (anything whose elements expose data())
/// to the row-view form the kernels consume.
template <class F, class Rows>
[[nodiscard]] std::vector<const typename F::rep*> share_row_ptrs(
    const Rows& shares) {
  std::vector<const typename F::rep*> rows;
  rows.reserve(shares.size());
  for (const auto& s : shares) rows.push_back(s.data());
  return rows;
}

/// kBarycentric kernel: weights + blocked GEMM. Returns the (U-T) segments
/// concatenated (length |betas| * seg_len).
template <class F>
[[nodiscard]] std::vector<typename F::rep> decode_eval_barycentric(
    std::span<const typename F::rep> xs,
    std::span<const typename F::rep> betas,
    std::span<const typename F::rep* const> shares, std::size_t seg_len,
    const lsa::sys::ExecPolicy& pol = {}) {
  const auto w = barycentric_weights<F>(xs, betas);
  return weighted_combine_blocked<F>(w, shares, seg_len, pol);
}

/// Legacy kNtt kernel: per coordinate, fast-interpolate g from (xs, share
/// column) and fast-evaluate it at the betas; the subproduct trees are
/// shared read-only across all seg_len coordinates, but every coordinate
/// re-runs the divrem Newton inversions and re-allocates intermediates —
/// the per-coordinate cost the batched plane amortizes away.
template <class F>
[[nodiscard]] std::vector<typename F::rep> decode_eval_fast(
    std::span<const typename F::rep> xs,
    std::span<const typename F::rep> betas,
    std::span<const typename F::rep* const> shares, std::size_t seg_len,
    const lsa::sys::ExecPolicy& pol = {}) {
  using rep = typename F::rep;
  const std::size_t u = xs.size();
  SubproductTree<F> share_tree(xs);
  SubproductTree<F> beta_tree(betas);

  std::vector<rep> out(betas.size() * seg_len, F::zero);
  pol.run_blocked(seg_len, [&](std::size_t begin, std::size_t end) {
    std::vector<rep> column(u);
    for (std::size_t l = begin; l < end; ++l) {
      for (std::size_t j = 0; j < u; ++j) column[j] = shares[j][l];
      const auto g = share_tree.interpolate(column);
      const auto vals = beta_tree.evaluate(g);
      for (std::size_t k = 0; k < betas.size(); ++k) {
        out[k * seg_len + l] = vals[k];
      }
    }
  });
  return out;
}

/// kLagrange kernel: the reference path (one lagrange_weights_at per beta).
template <class F>
[[nodiscard]] std::vector<typename F::rep> decode_eval_lagrange(
    std::span<const typename F::rep> xs,
    std::span<const typename F::rep> betas,
    std::span<const typename F::rep* const> shares, std::size_t seg_len,
    const lsa::sys::ExecPolicy& pol = {}) {
  using rep = typename F::rep;
  std::vector<rep> out(betas.size() * seg_len, F::zero);
  pol.run(betas.size(), [&](std::size_t k) {
    const auto w = lagrange_weights_at<F>(xs, betas[k]);
    std::span<rep> seg(out.data() + k * seg_len, seg_len);
    lsa::field::axpy_accumulate_blocked<F>(seg, std::span<const rep>(w),
                                           shares, pol.chunk_reps);
  });
  return out;
}

/// Strategy dispatch over share row views. kAuto and kBatchedNtt build a
/// transient BatchedDecodePlan (callers that decode the same survivor set
/// repeatedly should hold a plan — or use MaskCodec, which caches plans
/// per session). All strategies are exact for every field; the transforms
/// only reach their fast complexity on NTT-capable fields such as
/// field::Goldilocks.
template <class F>
[[nodiscard]] std::vector<typename F::rep> decode_eval(
    DecodeStrategy strategy, std::span<const typename F::rep> xs,
    std::span<const typename F::rep> betas,
    std::span<const typename F::rep* const> shares, std::size_t seg_len,
    const lsa::sys::ExecPolicy& pol = {}) {
  switch (strategy) {
    case DecodeStrategy::kLagrange:
      return decode_eval_lagrange<F>(xs, betas, shares, seg_len, pol);
    case DecodeStrategy::kBarycentric:
      return decode_eval_barycentric<F>(xs, betas, shares, seg_len, pol);
    case DecodeStrategy::kNtt:
      return decode_eval_fast<F>(xs, betas, shares, seg_len, pol);
    case DecodeStrategy::kBatchedNtt:
    case DecodeStrategy::kAuto: {
      BatchedDecodePlan<F> plan(xs, betas);
      return plan.run(strategy, shares, seg_len, pol);
    }
  }
  throw lsa::CodingError("decode_eval: unknown strategy");
}

/// Legacy adapter: nested-vector shares.
template <class F>
[[nodiscard]] std::vector<typename F::rep> decode_eval(
    DecodeStrategy strategy, std::span<const typename F::rep> xs,
    std::span<const typename F::rep> betas,
    std::span<const std::vector<typename F::rep>> shares,
    std::size_t seg_len) {
  const auto rows = share_row_ptrs<F>(shares);
  return decode_eval<F>(strategy, xs, betas,
                        std::span<const typename F::rep* const>(rows),
                        seg_len);
}

}  // namespace lsa::coding
