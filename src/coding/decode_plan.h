// Batched segment-block decode plane (paper §5.2, Table 5).
//
// The legacy kNtt kernel (coding/aggregate_decode.h) walks the subproduct
// tree once per mask coordinate: every coordinate re-runs Newton inversions
// inside poly_divrem, re-transforms the fixed tree polynomials and
// re-allocates every intermediate. A BatchedDecodePlan does all of that
// ONCE per (xs, betas) pair:
//
//   * both subproduct trees are built once, and every tree node is
//     annotated with the Newton inverse of its reversed polynomial
//     (the poly_divrem precomputation) at the node's fixed operating size;
//   * every fixed product operand (node polynomials, Newton inverses) is
//     forward-transformed once into cached NTT evaluations, with Shoup
//     precomputed operands for the pointwise passes;
//   * all transforms run through precomputed-twiddle NttPlan tables
//     (coding/ntt.h) shared across the whole segment block;
//   * the barycentric weight matrix is built once for the plan's GEMM
//     strategy.
//
// Streaming then pushes all seg_len coordinates through the trees in
// structure-of-arrays lane blocks: kLaneBlock coordinates interleave as
// buf[coeff * kLaneBlock + lane] and walk the subproduct trees TOGETHER,
// so every tree operation is a contiguous pass over lane blocks that maps
// 1:1 onto the runtime-dispatched SIMD substrate (field/simd/dispatch.h)
// — lazy 192-bit dot/axpy kernels for the matvecs and schoolbook
// products, lane-blocked SoA NTTs for the cached transforms, Shoup row
// scaling for the pointwise passes. Every value produced is the exact
// field result, so the plan is bit-identical to the per-coordinate
// kernels under every policy, strategy and dispatch level
// (tests/decode_strategy_test.cpp).
//
// Plans are meant to be cached per session keyed on the survivor set
// (coding/mask_codec.h): repeated rounds with the same (xs, betas) pay the
// setup once and stream at marginal cost.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "coding/decode_strategy.h"
#include "coding/lagrange.h"
#include "coding/ntt.h"
#include "coding/poly.h"
#include "common/error.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "field/field_vec.h"
#include "field/flat_matrix.h"
#include "field/simd/dispatch.h"
#include "sys/exec_policy.h"

namespace lsa::coding {

/// Evaluation-weight matrix W[k][j] such that g(betas[k]) = sum_j W[k][j] *
/// g(xs[j]) for any polynomial g of degree < |xs|, computed barycentrically:
///   W[k][j] = M(beta_k) / (M'(x_j) * (beta_k - x_j)),
/// with one shared O(|xs|^2) pass for the M'(x_j) and O(|xs|) per beta.
/// Preconditions: xs pairwise distinct; no beta coincides with an x.
template <class F>
[[nodiscard]] std::vector<std::vector<typename F::rep>> barycentric_weights(
    std::span<const typename F::rep> xs,
    std::span<const typename F::rep> betas) {
  using rep = typename F::rep;
  const std::size_t u = xs.size();
  lsa::require<lsa::CodingError>(u > 0, "barycentric: no share points");

  // M'(x_j) = prod_{m != j} (x_j - x_m), inverted in one batch.
  std::vector<rep> mprime_inv(u, F::one);
  for (std::size_t j = 0; j < u; ++j) {
    for (std::size_t m = 0; m < u; ++m) {
      if (m == j) continue;
      const rep diff = F::sub(xs[j], xs[m]);
      lsa::require<lsa::CodingError>(diff != F::zero,
                                     "barycentric: duplicate share points");
      mprime_inv[j] = F::mul(mprime_inv[j], diff);
    }
  }
  lsa::field::batch_inv_inplace<F>(std::span<rep>(mprime_inv));

  std::vector<std::vector<rep>> w(betas.size());
  std::vector<rep> diff_inv(u);
  for (std::size_t k = 0; k < betas.size(); ++k) {
    rep m_at_beta = F::one;
    for (std::size_t j = 0; j < u; ++j) {
      const rep diff = F::sub(betas[k], xs[j]);
      lsa::require<lsa::CodingError>(
          diff != F::zero, "barycentric: beta coincides with share point");
      m_at_beta = F::mul(m_at_beta, diff);
      diff_inv[j] = diff;
    }
    lsa::field::batch_inv_inplace<F>(std::span<rep>(diff_inv));
    w[k].resize(u);
    for (std::size_t j = 0; j < u; ++j) {
      w[k][j] = F::mul(m_at_beta, F::mul(mprime_inv[j], diff_inv[j]));
    }
  }
  return w;
}

/// out[k*seg + l] = sum_j w[k][j] * shares[j][l] — a (U-T) x U x seg field
/// GEMM. Column blocks fan out over the policy; within a block each output
/// row runs the fused axpy_accumulate kernel (split-word lazy accumulation
/// on 32-bit fields, 3-limb lazy accumulation on 64-bit fields). The
/// row_at callable maps a weight-row index to a span (shared by the
/// nested-vector kernel and the plan's FlatMatrix weights).
template <class F, class RowAt>
[[nodiscard]] std::vector<typename F::rep> weighted_combine_rows_blocked(
    RowAt&& row_at, std::size_t num_rows,
    std::span<const typename F::rep* const> shares, std::size_t seg_len,
    const lsa::sys::ExecPolicy& pol = {}) {
  using rep = typename F::rep;
  std::vector<rep> out(num_rows * seg_len, F::zero);
  const std::size_t chunk =
      pol.chunk_reps == 0 ? lsa::field::kDefaultChunkReps : pol.chunk_reps;
  pol.run_blocked(
      seg_len,
      [&](std::size_t begin, std::size_t end) {
        std::vector<const rep*> shifted(shares.size());
        for (std::size_t j = 0; j < shares.size(); ++j) {
          shifted[j] = shares[j] + begin;
        }
        for (std::size_t k = 0; k < num_rows; ++k) {
          std::span<rep> dst(out.data() + k * seg_len + begin, end - begin);
          lsa::field::axpy_accumulate_blocked<F>(dst, row_at(k), shifted,
                                                 chunk);
        }
      },
      chunk);
  return out;
}

template <class F>
[[nodiscard]] std::vector<typename F::rep> weighted_combine_blocked(
    const std::vector<std::vector<typename F::rep>>& w,
    std::span<const typename F::rep* const> shares, std::size_t seg_len,
    const lsa::sys::ExecPolicy& pol = {}) {
  using rep = typename F::rep;
  return weighted_combine_rows_blocked<F>(
      [&](std::size_t k) { return std::span<const rep>(w[k]); }, w.size(),
      shares, seg_len, pol);
}

/// Builds the subproduct tree / twiddle / weight tables for one (xs, betas)
/// pair once and streams any number of coordinates through them. See the
/// header comment for the full design.
template <class F>
class BatchedDecodePlan {
 public:
  using rep = typename F::rep;

  /// Coordinate lanes streamed per structure-of-arrays block: every
  /// polynomial buffer in the streaming core interleaves kLaneBlock
  /// coordinates (buf[coeff * kLaneBlock + lane]) so each tree operation
  /// walks contiguous lane blocks — the shape the SIMD substrate's vector
  /// kernels consume directly (one AVX-512 vector, two AVX2 vectors or
  /// four NEON vectors of 64-bit reps per block). The width is fixed
  /// host-independently: the lane layout, and therefore every intermediate
  /// and result, is identical on every ISA and under forced-scalar
  /// dispatch. Tail blocks zero-pad the unused lanes (every streaming
  /// operation is total, so padded lanes just compute throwaway values the
  /// scatter skips).
  static constexpr std::size_t kLaneBlock = 8;

  BatchedDecodePlan(std::span<const rep> xs, std::span<const rep> betas)
      : xs_(xs.begin(), xs.end()), betas_(betas.begin(), betas.end()) {
    lsa::require<lsa::CodingError>(!xs_.empty(), "decode plan: no points");
    lsa::require<lsa::CodingError>(!betas_.empty(), "decode plan: no betas");
  }

  [[nodiscard]] std::span<const rep> xs() const { return xs_; }
  [[nodiscard]] std::span<const rep> betas() const { return betas_; }

  // ---------------------------------------------- incremental maintenance

  /// One survivor-point replacement for patched_from: xs[pos] becomes
  /// `value`. The betas are fixed per codec; only share points churn.
  struct PointReplacement {
    std::size_t pos = 0;
    rep value{};
  };

  /// True when this plan came out of patched_from rather than a fresh
  /// build, and how many subproduct-tree nodes the patch re-multiplied.
  [[nodiscard]] bool patched() const { return patched_; }
  [[nodiscard]] std::size_t patched_nodes() const { return patched_nodes_; }

  /// Small-churn plan maintenance: builds the plan for base.xs() with the
  /// replacements applied, PATCHING whichever components the base already
  /// built instead of rebuilding them from scratch:
  ///
  ///   * barycentric weights update via the one-point multiply/divide
  ///     identity — replacing x_p = o with v scales W[k][j] (j != p) by
  ///     (beta_k - v)/(beta_k - o) * (x_j - o)/(x_j - v) and column p by
  ///     M'_old(o)/M'_new(v) (the beta factors cancel against the
  ///     refreshed numerator M(beta_k)): O(U * nb) multiplies plus one
  ///     batched inversion, no O(U^2) M' pass;
  ///   * the batched fast path refreshes the barycentric denominators by
  ///     the same identity and re-multiplies ONLY the root-to-leaf
  ///     subproduct-tree path through leaf p — one collapsed base matrix
  ///     plus O(log U) ancestor operands, re-deriving their cached NTT
  ///     transforms; the beta-side evaluation tree depends only on the
  ///     betas and is copied verbatim, as is every untouched share node.
  ///
  /// Every patched value is the exact canonical field element a
  /// from-scratch build over the same points produces (products of the
  /// same monic linear factors in any association order, and
  /// algebraically equal weight updates, land on identical bits), so a
  /// patched plan decodes bit-identically to a fresh BatchedDecodePlan —
  /// tests/decode_plan_patch_test.cpp sweeps this exhaustively.
  ///
  /// Replacements apply sequentially; each new value must stay distinct
  /// from every other current point and every beta. The patched plan
  /// keeps the base's point ORDER (only the replaced slots change) so the
  /// dirtied tree paths stay narrow; callers permute share rows to
  /// plan-xs order (coding/mask_codec.h does). Components the base never
  /// built stay unbuilt and would be built lazily from the new points.
  /// Each patched component's setup_s is the patch time, so setup
  /// accounting reflects what was actually paid.
  [[nodiscard]] static std::shared_ptr<BatchedDecodePlan> patched_from(
      const BatchedDecodePlan& base, std::span<const PointReplacement> reps) {
    lsa::sync::MutexLock lk(base.mu_);
    std::vector<rep> new_xs = base.xs_;
    for (const auto& r : reps) {
      lsa::require<lsa::CodingError>(r.pos < new_xs.size(),
                                     "plan patch: position out of range");
      for (std::size_t m = 0; m < new_xs.size(); ++m) {
        lsa::require<lsa::CodingError>(m == r.pos || r.value != new_xs[m],
                                       "plan patch: duplicate points");
      }
      for (const rep b : base.betas_) {
        lsa::require<lsa::CodingError>(
            r.value != b, "plan patch: point collides with beta");
      }
      new_xs[r.pos] = r.value;
    }
    auto plan = std::make_shared<BatchedDecodePlan>(
        std::span<const rep>(new_xs), std::span<const rep>(base.betas_));
    // The fresh plan is unshared until returned, but its lazy components
    // are guarded members: hold its lock for the writes below. Lock order
    // base.mu_ -> plan->mu_ is acyclic (no other holder of a plan that
    // does not exist outside this frame yet).
    lsa::sync::MutexLock plan_lk(plan->mu_);
    plan->patched_ = true;
    if (base.bary_) {
      lsa::common::Stopwatch sw;
      auto b = std::make_unique<Bary>(*base.bary_);
      std::vector<rep> cur = base.xs_;
      for (const auto& r : reps) {
        patch_bary_one(*b, cur, base.betas_, r.pos, r.value);
        cur[r.pos] = r.value;
      }
      b->setup_s = sw.elapsed_sec();
      plan->bary_ = std::move(b);
    }
    if (base.fast_) {
      lsa::common::Stopwatch sw;
      auto f = std::make_unique<Fast>(*base.fast_);
      std::vector<rep> cur = base.xs_;
      for (const auto& r : reps) {
        plan->patched_nodes_ += patch_fast_one(*f, cur, r.pos, r.value);
        cur[r.pos] = r.value;
      }
      f->setup_s = sw.elapsed_sec();
      plan->fast_ = std::move(f);
    }
    return plan;
  }

  /// Resolves kAuto to a concrete strategy from the plan shape and the
  /// segment length; concrete strategies pass through unchanged.
  [[nodiscard]] DecodeStrategy resolve(DecodeStrategy s,
                                       std::size_t seg_len) const {
    if (s != DecodeStrategy::kAuto) return s;
    if constexpr (!NttCapable<F>) {
      (void)seg_len;
      return DecodeStrategy::kBarycentric;
    } else {
      // Measured crossover, re-calibrated for the SoA lane-streamed plane
      // (AVX-512 dev box, Goldilocks, best-of-3, seg in {32, 256, 2048},
      // U in {128..1024}, U-T in {U/2, 7U/8}): the batched pipeline
      // streams a lane block in ~c*U*log2(U)^2 lazy-product ops against
      // the lazy GEMM's U*(U-T). The GEMM panels gain more from vector
      // dispatch than the butterfly stream (~2.4x vs ~2.1x on the dev
      // box), so the crossover sits higher when vector kernels are active:
      // with 2*(U-T) against c*log2(U)^2, c ~ 10 vectorized (U = 1024,
      // U-T = 512 ties; U-T = 896 batched wins 1.5-1.7x) and c ~ 12
      // forced-scalar (U = 512, U-T = 448 barycentric still wins 1.3x;
      // U = 1024, U-T = 512 ties). The old short-segment lowered threshold
      // is gone: SoA streaming amortizes the subproduct-tree walk across
      // kLaneBlock coordinates, so seg_len no longer shifts the winner
      // (measured ratios at seg 32 match seg 2048 within ~15%). Below
      // U = 512 the GEMM wins everywhere measured, in both dispatch modes.
      (void)seg_len;
      const std::size_t u = xs_.size();
      const std::size_t nb = betas_.size();
      if (u < 512) return DecodeStrategy::kBarycentric;
      const std::size_t log2u = std::bit_width(u) - 1;
      const bool vectorized = lsa::field::simd::active_level() !=
                              lsa::field::simd::Level::kScalar;
      const std::size_t c = vectorized ? 10 : 12;
      if (2 * nb >= c * log2u * log2u) return DecodeStrategy::kBatchedNtt;
      return DecodeStrategy::kBarycentric;
    }
  }

  /// Streams all seg_len coordinates of the given strategy into a fresh
  /// output vector of |betas| * seg_len reps (row k = values at betas[k]).
  [[nodiscard]] std::vector<rep> run(DecodeStrategy s,
                                     std::span<const rep* const> shares,
                                     std::size_t seg_len,
                                     const lsa::sys::ExecPolicy& pol) const {
    lsa::require<lsa::CodingError>(shares.size() == xs_.size(),
                                   "decode plan: wrong share count");
    switch (resolve(s, seg_len)) {
      case DecodeStrategy::kBarycentric:
        return run_barycentric(shares, seg_len, pol);
      case DecodeStrategy::kBatchedNtt:
        return run_batched(shares, seg_len, pol);
      default:
        throw lsa::CodingError("decode plan: unsupported strategy");
    }
  }

  /// One-time-setup cost already paid by this plan, per component (0 until
  /// the corresponding strategy first runs). Exposed so callers can report
  /// the setup-vs-streaming amortization (examples/protocol_comparison).
  [[nodiscard]] double barycentric_setup_seconds() const {
    lsa::sync::MutexLock lk(mu_);
    return bary_ ? bary_->setup_s : 0.0;
  }
  [[nodiscard]] double batched_setup_seconds() const {
    lsa::sync::MutexLock lk(mu_);
    return fast_ ? fast_->setup_s : 0.0;
  }

  // ------------------------------------------------------------- GEMM path

  [[nodiscard]] std::vector<rep> run_barycentric(
      std::span<const rep* const> shares, std::size_t seg_len,
      const lsa::sys::ExecPolicy& pol) const {
    const Bary& b = bary();
    return weighted_combine_rows_blocked<F>(
        [&](std::size_t k) { return b.w.row(k); }, betas_.size(), shares,
        seg_len, pol);
  }

  // ---------------------------------------------------- batched fast path

  [[nodiscard]] std::vector<rep> run_batched(
      std::span<const rep* const> shares, std::size_t seg_len,
      const lsa::sys::ExecPolicy& pol) const {
    const Fast& f = fast();
    const std::size_t u = xs_.size();
    const std::size_t nb = betas_.size();
    constexpr std::size_t W = kLaneBlock;
    std::vector<rep> out(nb * seg_len, F::zero);
    pol.run_blocked(seg_len, [&](std::size_t begin, std::size_t end) {
      Workspace ws(f, u, nb);
      for (std::size_t l0 = begin; l0 < end; l0 += W) {
        const std::size_t b = std::min(W, end - l0);
        // SoA gather: lane l of share coefficient j lands at
        // colmat[j*W + l]; row j's [l0, l0+b) run is contiguous. Tail
        // lanes are zero-filled (see kLaneBlock).
        for (std::size_t j = 0; j < u; ++j) {
          const rep* src = shares[j] + l0;
          rep* dst = ws.colmat.data() + j * W;
          for (std::size_t l = 0; l < b; ++l) dst[l] = src[l];
          for (std::size_t l = b; l < W; ++l) dst[l] = F::zero;
        }
        decode_lanes(f, ws);
        for (std::size_t k = 0; k < nb; ++k) {
          const rep* vals = ws.eval_out.data() + k * W;
          for (std::size_t l = 0; l < b; ++l) {
            out[k * seg_len + l0 + l] = vals[l];
          }
        }
      }
    });
    return out;
  }

 private:
  // --------------------------------------------------------- shared setup

  struct Bary {
    lsa::field::FlatMatrix<F> w;  ///< (U-T) x U weight matrix
    double setup_s = 0.0;
  };

  /// One fixed product operand (a node polynomial or a Newton inverse),
  /// optionally cached as NTT evaluations at a fixed size (with Shoup
  /// tables for the pointwise passes; the schoolbook path accumulates raw
  /// 128-bit products lazily and needs no precomputation).
  struct Operand {
    std::vector<rep> coeffs;       ///< truncated operand, schoolbook form
    unsigned log_n = 0;            ///< transform size when cached
    std::vector<rep> evals;        ///< forward NTT at 2^log_n (empty = none)
    std::vector<rep> evals_shoup;  ///< Shoup table of evals
  };

  // The streamed matvec / schoolbook kernels never reduce per term: full
  // products accumulate into 3-limb (192-bit) lazy values — one widening
  // multiply plus carry adds per term, branch-free and free of
  // data-dependent mispredictions — and ONE fold per output element
  // reduces back into the field (field/field_vec.h: lazy192_accumulate /
  // lazy192_fold). The fold reduces the exact sum, so results stay
  // bit-identical to the mul-per-term kernels.
  static void lazy_accumulate(std::uint64_t& lo, std::uint64_t& mi,
                              std::uint64_t& hi, rep a, rep b) {
    lsa::field::lazy192_accumulate<F>(lo, mi, hi, a, b);
  }

  [[nodiscard]] static rep lazy_fold(std::uint64_t lo, std::uint64_t mi,
                                     std::uint64_t hi) {
    return lsa::field::lazy192_fold<F>(lo, mi, hi);
  }

  struct Node {
    std::size_t leaves = 0;  ///< points under this node
    std::size_t lo = 0;      ///< first leaf index under this node
    bool carry = false;      ///< unpaired node carried up one level
    // Interpolation (share tree): cached sibling polynomials for
    //   res = res_left * poly_right + res_right * poly_left.
    std::size_t left_leaves = 0;
    Operand poly_left, poly_right;  ///< cached at size bit_ceil(leaves)
    // Evaluation (beta tree): fixed incoming size fs and, when fs >
    // leaves, the divrem precomputation r = f mod poly:
    std::size_t fs = 0;
    std::size_t qlen = 0;        ///< fs - leaves (0 = pass-through)
    Operand rb_inv;              ///< Newton inverse of rev(poly) mod x^qlen
    Operand poly_low;            ///< poly mod x^leaves
  };

  /// Collapsed bottom-of-tree node: the last kBaseWidth-sized levels of
  /// both trees are one precomputed matrix each — an m x m Lagrange-basis
  /// matvec for interpolation (coeff i of M_node/(x - x_j) at [i][j]) and
  /// an m x fs Vandermonde matvec for evaluation (betas[lo+k]^i at
  /// [k][i]) — replacing dozens of tiny per-node products with one lazy
  /// dot per (row, lane block).
  struct BaseNode {
    std::size_t lo = 0;  ///< first leaf index
    std::size_t m = 0;   ///< leaves (matrix rows)
    std::size_t fs = 0;  ///< input length (matrix cols; m for interp)
    std::vector<rep> mat;  ///< row-major m x fs: each row is one dot's
                           ///< coefficient stream (see matvec_soa)
  };

  struct Fast {
    std::vector<BaseNode> interp_base;             ///< share-tree bottom
    std::vector<std::vector<Node>> interp_levels;  ///< levels above base
    std::vector<std::vector<Node>> eval_levels;    ///< top first, above base
    std::vector<BaseNode> eval_base;               ///< beta-tree bottom
    std::vector<rep> mprime_inv, mprime_inv_shoup;
    std::map<unsigned, NttPlan<F>> ntts;  ///< per-size twiddle tables
    std::size_t scratch_len = 0;          ///< max transform / poly size
    double setup_s = 0.0;
  };

  // All streaming buffers are SoA over one lane block: a buffer holding n
  // polynomial coefficients stores n * kLaneBlock reps, coefficient i's
  // lanes contiguous at [i*kLaneBlock, (i+1)*kLaneBlock).
  struct Workspace {
    std::vector<rep> colmat;              ///< gathered lanes, U blocks
    std::vector<rep> interp_a, interp_b;  ///< ping-pong, U blocks
    std::vector<rep> eval_a, eval_b;      ///< remainder ping-pong
    std::vector<rep> eval_out;            ///< final values, nb blocks
    std::vector<rep> t1, t2, t3;          ///< transform / product scratch
    std::vector<std::uint64_t> lzlo, lzmi, lzhi;  ///< lazy product limbs
    explicit Workspace(const Fast& f, std::size_t u, std::size_t nb)
        : colmat(u * kLaneBlock),
          interp_a(u * kLaneBlock),
          interp_b(u * kLaneBlock),
          eval_a(std::max(u, nb) * kLaneBlock),
          eval_b(std::max(u, nb) * kLaneBlock),
          eval_out(nb * kLaneBlock),
          t1(f.scratch_len * kLaneBlock),
          t2(f.scratch_len * kLaneBlock),
          t3(f.scratch_len * kLaneBlock),
          lzlo(f.scratch_len * kLaneBlock),
          lzmi(f.scratch_len * kLaneBlock),
          lzhi(f.scratch_len * kLaneBlock) {}
  };

  const Bary& bary() const {
    lsa::sync::MutexLock lk(mu_);
    if (!bary_) {
      lsa::common::Stopwatch sw;
      auto b = std::make_unique<Bary>();
      const auto w = barycentric_weights<F>(std::span<const rep>(xs_),
                                            std::span<const rep>(betas_));
      b->w.reset(betas_.size(), xs_.size());
      for (std::size_t k = 0; k < betas_.size(); ++k) {
        std::copy(w[k].begin(), w[k].end(), b->w.row(k).begin());
      }
      b->setup_s = sw.elapsed_sec();
      bary_ = std::move(b);
    }
    return *bary_;
  }

  // Product sizes at or above this use the cached-NTT path; below it the
  // truncated schoolbook loop is cheaper (same crossover class as
  // kNttThreshold, on the output length of the fixed-size products).
  static constexpr std::size_t kPlanNttMinOut = 64;

  /// Prepares `op` (already holding coeffs) for products of output length
  /// out_len: caches the forward transform when profitable and records the
  /// needed scratch in `f`.
  static void finalize_operand(Fast& f, Operand& op, std::size_t out_len) {
    f.scratch_len = std::max(f.scratch_len, out_len);
    f.scratch_len = std::max(f.scratch_len, op.coeffs.size());
    if constexpr (NttCapable<F>) {
      if (out_len >= kPlanNttMinOut) {
        const std::size_t n = std::bit_ceil(out_len);
        const unsigned log_n =
            static_cast<unsigned>(std::countr_zero(n));
        if (log_n <= F::two_adicity) {
          auto it = f.ntts.find(log_n);
          if (it == f.ntts.end()) {
            it = f.ntts.emplace(log_n, NttPlan<F>(log_n)).first;
          }
          op.log_n = log_n;
          op.evals.assign(n, F::zero);
          std::copy(op.coeffs.begin(), op.coeffs.end(), op.evals.begin());
          it->second.forward(std::span<rep>(op.evals));
          if constexpr (lsa::field::ShoupCapable<F>) {
            op.evals_shoup = lsa::field::shoup_precompute_vec<F>(
                std::span<const rep>(op.evals));
          }
          f.scratch_len = std::max(f.scratch_len, n);
        }
      }
    }
  }

  const Fast& fast() const {
    lsa::sync::MutexLock lk(mu_);
    if (!fast_) {
      lsa::common::Stopwatch sw;
      auto f = std::make_unique<Fast>();
      const std::size_t u = xs_.size();
      const std::size_t nb = betas_.size();

      // The existing SubproductTree supplies node polynomials and the
      // barycentric denominators 1/M'(x_j); the plan annotates its shape.
      SubproductTree<F> share_tree{std::span<const rep>(xs_)};
      SubproductTree<F> beta_tree{std::span<const rep>(betas_)};
      f->mprime_inv.assign(share_tree.barycentric_inverses().begin(),
                           share_tree.barycentric_inverses().end());
      if constexpr (lsa::field::ShoupCapable<F>) {
        f->mprime_inv_shoup = lsa::field::shoup_precompute_vec<F>(
            std::span<const rep>(f->mprime_inv));
      }

      // ---- Interpolation tree (combine bottom-up over xs). ----
      // Tree levels up to kBaseLog collapse into per-node Lagrange-basis
      // matrices; only the levels above are walked per coordinate.
      const std::size_t ibase = std::min<std::size_t>(
          kBaseLog, share_tree.num_levels() - 1);
      {
        std::size_t lo = 0;
        f->interp_base.resize(share_tree.level_size(ibase));
        for (std::size_t i = 0; i < f->interp_base.size(); ++i) {
          BaseNode& bn = f->interp_base[i];
          const auto& poly = share_tree.node_poly(ibase, i);
          bn.m = poly.size() - 1;
          bn.fs = bn.m;
          bn.lo = lo;
          lo += bn.m;
          // Entry [c][j] = coefficient c of M_node / (x - xs[lo + j]):
          // res = sum_j c_j * (basis poly j).
          std::vector<std::vector<rep>> basis(bn.m);
          for (std::size_t j = 0; j < bn.m; ++j) {
            const std::vector<rep> leaf{F::neg(xs_[bn.lo + j]), F::one};
            basis[j] = poly_divrem<F>(std::span<const rep>(poly),
                                      std::span<const rep>(leaf))
                           .quotient;
            basis[j].resize(bn.m, F::zero);
          }
          bn.mat.assign(bn.m * bn.fs, F::zero);
          for (std::size_t r = 0; r < bn.m; ++r) {
            for (std::size_t c = 0; c < bn.fs; ++c) {
              bn.mat[r * bn.fs + c] = basis[c][r];
            }
          }
        }
      }
      f->interp_levels.resize(share_tree.num_levels());
      for (std::size_t lv = ibase + 1; lv < share_tree.num_levels(); ++lv) {
        auto& level = f->interp_levels[lv];
        level.resize(share_tree.level_size(lv));
        std::size_t lo = 0;
        for (std::size_t i = 0; i < level.size(); ++i) {
          Node& nd = level[i];
          nd.leaves = share_tree.node_poly(lv, i).size() - 1;
          nd.lo = lo;
          lo += nd.leaves;
          const std::size_t prev = share_tree.level_size(lv - 1);
          if (2 * i + 1 >= prev) {
            nd.carry = true;
            continue;
          }
          const auto& pl = share_tree.node_poly(lv - 1, 2 * i);
          const auto& pr = share_tree.node_poly(lv - 1, 2 * i + 1);
          nd.left_leaves = pl.size() - 1;
          nd.poly_left.coeffs = pl;
          nd.poly_right.coeffs = pr;
          finalize_operand(*f, nd.poly_left, nd.leaves);
          finalize_operand(*f, nd.poly_right, nd.leaves);
        }
      }

      // ---- Evaluation tree (divrem top-down over betas), stored with the
      // TOP level first so streaming walks it in order; levels at or
      // below kBaseLog collapse into per-node Vandermonde matrices that
      // evaluate the incoming remainder directly. ----
      const std::size_t depth = beta_tree.num_levels();
      const std::size_t ebase =
          std::min<std::size_t>(kBaseLog, depth - 1);
      f->eval_levels.resize(depth - 1 - ebase);
      for (std::size_t lv = 0; lv < f->eval_levels.size(); ++lv) {
        // eval_levels[e] holds tree level (depth - 1 - e).
        const std::size_t tl = depth - 1 - lv;
        auto& level = f->eval_levels[lv];
        level.resize(beta_tree.level_size(tl));
        std::size_t lo = 0;
        for (std::size_t i = 0; i < level.size(); ++i) {
          Node& nd = level[i];
          nd.leaves = beta_tree.node_poly(tl, i).size() - 1;
          nd.lo = lo;
          lo += nd.leaves;
          // Incoming size: U at the root, the parent's remainder size
          // (its leaf count) below. A carry parent shares this node's
          // polynomial, so its remainder already fits and the qlen == 0
          // pass-through below handles it uniformly.
          nd.fs = lv == 0 ? u : f->eval_levels[lv - 1][i / 2].leaves;
          if (nd.fs <= nd.leaves) {
            nd.qlen = 0;  // r = f unchanged
            continue;
          }
          nd.qlen = nd.fs - nd.leaves;
          const auto& poly = beta_tree.node_poly(tl, i);
          // Newton inverse of the reversed (monic => unit constant term)
          // node polynomial, to the quotient precision.
          std::vector<rep> rev(poly.rbegin(), poly.rend());
          nd.rb_inv.coeffs = poly_inverse_mod_xk<F>(
              std::span<const rep>(rev), nd.qlen);
          nd.rb_inv.coeffs.resize(nd.qlen, F::zero);
          const std::size_t t = std::min(nd.fs, nd.qlen);
          finalize_operand(*f, nd.rb_inv, t + nd.qlen - 1);
          nd.poly_low.coeffs.assign(poly.begin(),
                                    poly.begin() + nd.leaves);
          finalize_operand(*f, nd.poly_low,
                           std::min(nd.qlen, nd.leaves) + nd.leaves - 1);
        }
      }
      {
        std::size_t lo = 0;
        f->eval_base.resize(beta_tree.level_size(ebase));
        for (std::size_t i = 0; i < f->eval_base.size(); ++i) {
          BaseNode& bn = f->eval_base[i];
          bn.m = beta_tree.node_poly(ebase, i).size() - 1;
          bn.lo = lo;
          lo += bn.m;
          bn.fs = f->eval_levels.empty()
                      ? u
                      : f->eval_levels.back()[i / 2].leaves;
          // Entry [k][c] = betas[lo + k]^c: vals = V * f, already in the
          // row-major dot layout.
          bn.mat.assign(bn.m * bn.fs, F::zero);
          for (std::size_t k = 0; k < bn.m; ++k) {
            rep pw = F::one;
            for (std::size_t c = 0; c < bn.fs; ++c) {
              bn.mat[k * bn.fs + c] = pw;
              pw = F::mul(pw, betas_[bn.lo + k]);
            }
          }
        }
      }
      f->scratch_len = std::max(f->scratch_len, std::max(u, nb));
      f->setup_s = sw.elapsed_sec();
      fast_ = std::move(f);
    }
    return *fast_;
  }

  /// log2 of the collapsed bottom-of-tree width: tree levels 0..kBaseLog
  /// (nodes of up to 2^kBaseLog leaves) run as one flat matvec each.
  static constexpr std::size_t kBaseLog = 5;

  /// Lazy192 vector kernel table when this field's rep is a 64-bit word
  /// (the 3-limb limb arithmetic is modulus-free, so any 64-bit field
  /// qualifies — including Goldilocks); null for 32-bit fields and under
  /// scalar dispatch.
  static const lsa::field::simd::U64Kernels* lazy_vk() {
    if constexpr (sizeof(rep) == 8) {
      return lsa::field::simd::u64_active();
    } else {
      return nullptr;
    }
  }

  /// Collapsed base-node kernel over one SoA lane block: accumulates the
  /// lazy 192-bit row sums
  ///   out[r][lane] = sum_c mat[r][c] * in[c*W + lane]
  /// into the workspace limb arrays at block offset (bn.lo + r). Each
  /// row-major matrix row is one strided-coefficient dot against the
  /// contiguous lane stream (simd: lazy192_dot overwrites the limbs, no
  /// pre-zero needed on the vector path). The base nodes of a tree tile
  /// their level exactly, so the caller folds the whole tiled span once
  /// after every node ran (lazy_fold_out).
  static void matvec_soa(const BaseNode& bn, const rep* in, Workspace& ws) {
    constexpr std::size_t W = kLaneBlock;
    const auto* vk = lazy_vk();
    for (std::size_t r = 0; r < bn.m; ++r) {
      const rep* row = bn.mat.data() + r * bn.fs;
      std::uint64_t* lo = ws.lzlo.data() + (bn.lo + r) * W;
      std::uint64_t* mi = ws.lzmi.data() + (bn.lo + r) * W;
      std::uint64_t* hi = ws.lzhi.data() + (bn.lo + r) * W;
      if constexpr (sizeof(rep) == 8) {
        if (vk) {
          vk->lazy192_dot(lo, mi, hi, row, 1, in, bn.fs, W);
          continue;
        }
      }
      std::fill_n(lo, W, 0);
      std::fill_n(mi, W, 0);
      std::fill_n(hi, W, 0);
      for (std::size_t c = 0; c < bn.fs; ++c) {
        const rep b = row[c];
        const rep* x = in + c * W;
        for (std::size_t l = 0; l < W; ++l) {
          lazy_accumulate(lo[l], mi[l], hi[l], x[l], b);
        }
      }
    }
  }

  // ------------------------------------------------------- streaming core

  /// Truncated schoolbook product over one SoA lane block, accumulated
  /// into the workspace's lazy limb arrays (call lazy_zero first, fold
  /// with lazy_fold_out after; several products may share one zero/fold
  /// pair — the fused interpolation combine does). `a` holds la lane
  /// blocks; operand coefficient j contributes ONE contiguous
  /// length-(imax*W) axpy into limb block j (simd: lazy192_axpy) instead
  /// of the per-coordinate strided walk.
  static void schoolbook_into(std::span<const rep> a, const Operand& op,
                              std::size_t out_len, Workspace& ws) {
    constexpr std::size_t W = kLaneBlock;
    const std::size_t la = a.size() / W;
    const std::size_t jlim = std::min(op.coeffs.size(), out_len);
    const auto* vk = lazy_vk();
    for (std::size_t j = 0; j < jlim; ++j) {
      const rep b = op.coeffs[j];
      if (b == F::zero) continue;
      const std::size_t imax = std::min(la, out_len - j);
      std::uint64_t* lo = ws.lzlo.data() + j * W;
      std::uint64_t* mi = ws.lzmi.data() + j * W;
      std::uint64_t* hi = ws.lzhi.data() + j * W;
      if constexpr (sizeof(rep) == 8) {
        if (vk) {
          vk->lazy192_axpy(lo, mi, hi, b, a.data(), imax * W);
          continue;
        }
      }
      for (std::size_t i = 0; i < imax * W; ++i) {
        lazy_accumulate(lo[i], mi[i], hi[i], a[i], b);
      }
    }
  }

  /// Zero / fold `count` coefficient blocks (count * W limb triples) of
  /// the lazy arrays. The fold reduces each exact 192-bit sum to its
  /// canonical field value (simd: fold192 on Goldilocks), so vector and
  /// scalar folds are bit-identical by uniqueness of the canonical form.
  static void lazy_zero(Workspace& ws, std::size_t count) {
    std::fill_n(ws.lzlo.begin(), count * kLaneBlock, 0);
    std::fill_n(ws.lzmi.begin(), count * kLaneBlock, 0);
    std::fill_n(ws.lzhi.begin(), count * kLaneBlock, 0);
  }

  static void lazy_fold_out(const Workspace& ws, rep* out,
                            std::size_t count) {
    const std::size_t n = count * kLaneBlock;
    if constexpr (lsa::field::simd::kIsGoldilocksField<F>) {
      if (const auto* gk = lsa::field::simd::goldilocks_active()) {
        gk->fold192(out, ws.lzlo.data(), ws.lzmi.data(), ws.lzhi.data(), n);
        return;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = lazy_fold(ws.lzlo[i], ws.lzmi[i], ws.lzhi[i]);
    }
  }

  /// t[i*W + l] = t[i*W + l] * op.evals[i] — the pointwise pass of the
  /// cached-transform product: one scalar evaluation scales all lanes of
  /// its transform slot (simd: mul_shoup_rows).
  static void pointwise_rows(rep* t, const Operand& op, std::size_t n) {
    constexpr std::size_t W = kLaneBlock;
    if constexpr (lsa::field::ShoupCapable<F>) {
      if constexpr (lsa::field::simd::kIsGoldilocksField<F>) {
        if (const auto* gk = lsa::field::simd::goldilocks_active()) {
          gk->mul_shoup_rows(t, op.evals.data(), op.evals_shoup.data(), n,
                             W);
          return;
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        const rep e = op.evals[i];
        const rep es = op.evals_shoup[i];
        rep* row = t + i * W;
        for (std::size_t l = 0; l < W; ++l) {
          row[l] = F::mul_shoup(row[l], e, es);
        }
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const rep e = op.evals[i];
        rep* row = t + i * W;
        for (std::size_t l = 0; l < W; ++l) row[l] = F::mul(row[l], e);
      }
    }
  }

  /// out[0..out_len blocks) = low out_len coefficients (per lane) of
  /// a * op, where a holds la live coefficient blocks in SoA order.
  /// Dispatches to the cached transform (scratch: ws.t1, lane-blocked SoA
  /// NTT) or the lazy truncated schoolbook loop as decided at setup.
  static void mul_trunc(const Fast& f, std::span<const rep> a,
                        const Operand& op, rep* out, std::size_t out_len,
                        Workspace& ws) {
    constexpr std::size_t W = kLaneBlock;
    if (!op.evals.empty()) {
      std::vector<rep>& scratch = ws.t1;
      const NttPlan<F>& plan = f.ntts.at(op.log_n);
      const std::size_t n = plan.size();
      std::fill(scratch.begin(), scratch.begin() + n * W, F::zero);
      std::copy(a.begin(), a.end(), scratch.begin());
      std::span<rep> buf(scratch.data(), n * W);
      plan.forward_soa(buf, W);
      pointwise_rows(scratch.data(), op, n);
      plan.inverse_soa(buf, W);
      std::copy(scratch.begin(), scratch.begin() + out_len * W, out);
      return;
    }
    lazy_zero(ws, out_len);
    schoolbook_into(a, op, out_len, ws);
    lazy_fold_out(ws, out, out_len);
  }

  /// Interpolation combine for one node: res[0..leaves blocks) =
  /// left * poly_right + right * poly_left, fused through one inverse
  /// transform when cached.
  static void combine_node(const Fast& f, const Node& nd,
                           std::span<const rep> left,
                           std::span<const rep> right, rep* res,
                           Workspace& ws) {
    constexpr std::size_t W = kLaneBlock;
    const std::size_t out_len = nd.leaves;
    if (!nd.poly_right.evals.empty() && !nd.poly_left.evals.empty() &&
        nd.poly_right.log_n == nd.poly_left.log_n) {
      const NttPlan<F>& plan = f.ntts.at(nd.poly_right.log_n);
      const std::size_t n = plan.size();
      std::fill(ws.t1.begin(), ws.t1.begin() + n * W, F::zero);
      std::copy(left.begin(), left.end(), ws.t1.begin());
      std::fill(ws.t2.begin(), ws.t2.begin() + n * W, F::zero);
      std::copy(right.begin(), right.end(), ws.t2.begin());
      std::span<rep> b1(ws.t1.data(), n * W), b2(ws.t2.data(), n * W);
      plan.forward_soa(b1, W);
      plan.forward_soa(b2, W);
      pointwise_rows(ws.t1.data(), nd.poly_right, n);
      pointwise_rows(ws.t2.data(), nd.poly_left, n);
      lsa::field::add_inplace<F>(b1, std::span<const rep>(b2));
      plan.inverse_soa(b1, W);
      std::copy(ws.t1.begin(), ws.t1.begin() + out_len * W, res);
      return;
    }
    if (nd.poly_right.evals.empty() && nd.poly_left.evals.empty()) {
      // Fused schoolbook combine: both products share one lazy
      // accumulation and a single fold into the result slot.
      lazy_zero(ws, out_len);
      schoolbook_into(left, nd.poly_right, out_len, ws);
      schoolbook_into(right, nd.poly_left, out_len, ws);
      lazy_fold_out(ws, res, out_len);
      return;
    }
    mul_trunc(f, left, nd.poly_right, res, out_len, ws);
    mul_trunc(f, right, nd.poly_left, ws.t3.data(), out_len, ws);
    lsa::field::add_inplace<F>(
        std::span<rep>(res, out_len * W),
        std::span<const rep>(ws.t3.data(), out_len * W));
  }

  /// One SoA lane block: W gathered columns -> interpolate over xs ->
  /// evaluate at betas, all lanes walking the trees together. Leaves the
  /// |betas| x W values in ws.eval_out.
  void decode_lanes(const Fast& f, Workspace& ws) const {
    constexpr std::size_t W = kLaneBlock;
    const std::size_t u = xs_.size();

    // Leaf coefficients c_j = y_j / M'(x_j): one scalar weight scales all
    // lanes of its block (simd: mul_shoup_rows).
    std::copy(ws.colmat.begin(), ws.colmat.end(), ws.interp_a.begin());
    if constexpr (lsa::field::ShoupCapable<F>) {
      bool done = false;
      if constexpr (lsa::field::simd::kIsGoldilocksField<F>) {
        if (const auto* gk = lsa::field::simd::goldilocks_active()) {
          gk->mul_shoup_rows(ws.interp_a.data(), f.mprime_inv.data(),
                             f.mprime_inv_shoup.data(), u, W);
          done = true;
        }
      }
      if (!done) {
        for (std::size_t j = 0; j < u; ++j) {
          rep* row = ws.interp_a.data() + j * W;
          for (std::size_t l = 0; l < W; ++l) {
            row[l] = F::mul_shoup(row[l], f.mprime_inv[j],
                                  f.mprime_inv_shoup[j]);
          }
        }
      }
    } else {
      for (std::size_t j = 0; j < u; ++j) {
        rep* row = ws.interp_a.data() + j * W;
        for (std::size_t l = 0; l < W; ++l) {
          row[l] = F::mul(row[l], f.mprime_inv[j]);
        }
      }
    }
    // Collapsed bottom levels (the base nodes tile [0, u), so one fold
    // covers them all), then combine up the remaining share-tree levels
    // (positional ping-pong buffers).
    rep* prev = ws.interp_b.data();
    rep* cur = ws.interp_a.data();
    for (const BaseNode& bn : f.interp_base) {
      matvec_soa(bn, ws.interp_a.data() + bn.lo * W, ws);
    }
    lazy_fold_out(ws, prev, u);
    for (std::size_t lv = 0; lv < f.interp_levels.size(); ++lv) {
      if (f.interp_levels[lv].empty()) continue;  // at or below the base
      for (const Node& nd : f.interp_levels[lv]) {
        if (nd.carry) {
          std::copy(prev + nd.lo * W, prev + (nd.lo + nd.leaves) * W,
                    cur + nd.lo * W);
          continue;
        }
        combine_node(
            f, nd,
            std::span<const rep>(prev + nd.lo * W, nd.left_leaves * W),
            std::span<const rep>(prev + (nd.lo + nd.left_leaves) * W,
                                 (nd.leaves - nd.left_leaves) * W),
            cur + nd.lo * W, ws);
      }
      std::swap(prev, cur);
    }
    // prev now holds the interpolation result (nominal size U per lane);
    // walk the beta tree top-down into ws.eval_out.
    eval_walk(f, prev, ws);
  }

  /// Top-down divrem walk over the beta tree's upper levels, then the
  /// collapsed Vandermonde base evaluates each final remainder straight
  /// into ws.eval_out (the eval base nodes tile [0, nb), folded once).
  void eval_walk(const Fast& f, const rep* interp, Workspace& ws) const {
    constexpr std::size_t W = kLaneBlock;
    rep* bufs[2] = {ws.eval_a.data(), ws.eval_b.data()};
    for (std::size_t lv = 0; lv < f.eval_levels.size(); ++lv) {
      rep* cur = bufs[lv % 2];
      const rep* prevbuf = bufs[(lv + 1) % 2];
      const auto& level = f.eval_levels[lv];
      for (std::size_t i = 0; i < level.size(); ++i) {
        const Node& nd = level[i];
        const rep* in =
            lv == 0 ? interp
                    : prevbuf + f.eval_levels[lv - 1][i / 2].lo * W;
        reduce_node(f, nd, in, cur + nd.lo * W, ws);
      }
    }
    const std::size_t nlv = f.eval_levels.size();
    const rep* lastbuf = nlv == 0 ? interp : bufs[(nlv - 1) % 2];
    for (std::size_t i = 0; i < f.eval_base.size(); ++i) {
      const BaseNode& bn = f.eval_base[i];
      const rep* in = nlv == 0
                          ? interp
                          : lastbuf + f.eval_levels[nlv - 1][i / 2].lo * W;
      matvec_soa(bn, in, ws);
    }
    lazy_fold_out(ws, ws.eval_out.data(), betas_.size());
  }

  /// r = f mod node.poly with the node's fixed sizes: f has nd.fs nominal
  /// coefficient blocks, r gets nd.leaves (zero-padded). Pass-through
  /// when the incoming size already fits. Coefficient reversals swap
  /// whole lane blocks; lanes inside a block never move.
  void reduce_node(const Fast& f, const Node& nd, const rep* in, rep* out,
                   Workspace& ws) const {
    constexpr std::size_t W = kLaneBlock;
    if (nd.qlen == 0) {
      std::copy(in, in + nd.fs * W, out);
      std::fill(out + nd.fs * W, out + nd.leaves * W, F::zero);
      return;
    }
    const std::size_t qlen = nd.qlen;
    const std::size_t t = std::min(nd.fs, qlen);
    // rev(f) truncated to the quotient precision: top t coefficients.
    for (std::size_t i = 0; i < t; ++i) {
      std::copy_n(in + (nd.fs - 1 - i) * W, W, ws.t2.data() + i * W);
    }
    // rq = rev(f) * rb_inv mod x^qlen.
    mul_trunc(f, std::span<const rep>(ws.t2.data(), t * W), nd.rb_inv,
              ws.t3.data(), qlen, ws);
    // q = reverse(rq).
    for (std::size_t i = 0; i < qlen; ++i) {
      std::copy_n(ws.t3.data() + (qlen - 1 - i) * W, W,
                  ws.t2.data() + i * W);
    }
    // bq mod x^leaves, using q mod x^leaves and poly mod x^leaves.
    const std::size_t qt = std::min(qlen, nd.leaves);
    mul_trunc(f, std::span<const rep>(ws.t2.data(), qt * W), nd.poly_low,
              ws.t3.data(), nd.leaves, ws);
    std::copy(in, in + nd.leaves * W, out);
    lsa::field::sub_inplace<F>(
        std::span<rep>(out, nd.leaves * W),
        std::span<const rep>(ws.t3.data(), nd.leaves * W));
  }

  // ------------------------------------------------- incremental patching

  /// Applies one replacement xs[p]: o -> v to a copied barycentric
  /// component; cur_xs still holds o at p. See patched_from for the
  /// identity. One batched inversion covers every divisor: slots [0, u)
  /// hold x_j - v (and, at p, M'_new(v)); slots [u, u + nb) hold
  /// beta_k - o.
  static void patch_bary_one(Bary& b, std::span<const rep> cur_xs,
                             std::span<const rep> betas, std::size_t p,
                             rep v) {
    const std::size_t u = cur_xs.size();
    const std::size_t nb = betas.size();
    const rep o = cur_xs[p];
    std::vector<rep> inv(u + nb);
    rep mprime_old_p = F::one;  ///< M'_old(o) = prod_{m != p} (o - x_m)
    rep mprime_new_p = F::one;  ///< M'_new(v) = prod_{m != p} (v - x_m)
    for (std::size_t m = 0; m < u; ++m) {
      if (m == p) continue;
      mprime_old_p = F::mul(mprime_old_p, F::sub(o, cur_xs[m]));
      mprime_new_p = F::mul(mprime_new_p, F::sub(v, cur_xs[m]));
    }
    for (std::size_t j = 0; j < u; ++j) {
      inv[j] = j == p ? mprime_new_p : F::sub(cur_xs[j], v);
    }
    for (std::size_t k = 0; k < nb; ++k) inv[u + k] = F::sub(betas[k], o);
    lsa::field::batch_inv_inplace<F>(std::span<rep>(inv));
    // colfac[j] = (x_j - o)/(x_j - v); colfac[p] = M'_old(o)/M'_new(v) and
    // takes NO row factor (the beta factors cancel for the moved point).
    std::vector<rep> colfac(u);
    for (std::size_t j = 0; j < u; ++j) {
      colfac[j] = j == p ? F::mul(mprime_old_p, inv[p])
                         : F::mul(F::sub(cur_xs[j], o), inv[j]);
    }
    for (std::size_t k = 0; k < nb; ++k) {
      const rep rowfac = F::mul(F::sub(betas[k], v), inv[u + k]);
      auto row = b.w.row(k);
      for (std::size_t j = 0; j < u; ++j) {
        row[j] = F::mul(row[j],
                        j == p ? colfac[p] : F::mul(rowfac, colfac[j]));
      }
    }
  }

  /// Applies one replacement xs[p]: o -> v to a copied fast component:
  /// barycentric denominators by the multiply/divide identity, then the
  /// root-to-leaf interpolation-tree path through leaf p (the beta-side
  /// eval tree never references the xs). Returns the number of
  /// re-multiplied tree nodes.
  static std::size_t patch_fast_one(Fast& f, std::span<const rep> cur_xs,
                                    std::size_t p, rep v) {
    const std::size_t u = cur_xs.size();
    const rep o = cur_xs[p];
    std::vector<rep> inv(u);
    rep mprime_new_p = F::one;
    for (std::size_t m = 0; m < u; ++m) {
      if (m == p) continue;
      mprime_new_p = F::mul(mprime_new_p, F::sub(v, cur_xs[m]));
    }
    for (std::size_t j = 0; j < u; ++j) {
      inv[j] = j == p ? mprime_new_p : F::sub(cur_xs[j], v);
    }
    lsa::field::batch_inv_inplace<F>(std::span<rep>(inv));
    for (std::size_t j = 0; j < u; ++j) {
      f.mprime_inv[j] =
          j == p ? inv[p]
                 : F::mul(f.mprime_inv[j],
                          F::mul(F::sub(cur_xs[j], o), inv[j]));
    }
    if constexpr (lsa::field::ShoupCapable<F>) {
      f.mprime_inv_shoup = lsa::field::shoup_precompute_vec<F>(
          std::span<const rep>(f.mprime_inv));
    }

    // Rebuild the collapsed base node containing leaf p: its polynomial
    // is the product of its leaf linears (exact ring products are
    // association-independent, so this matches the tree build bit for
    // bit), and its Lagrange-basis matrix the same quotients the builder
    // derives.
    std::size_t bi = 0;
    while (!(f.interp_base[bi].lo <= p &&
             p < f.interp_base[bi].lo + f.interp_base[bi].m)) {
      ++bi;
    }
    BaseNode& bn = f.interp_base[bi];
    const auto leaf_x = [&](std::size_t j) {
      return bn.lo + j == p ? v : cur_xs[bn.lo + j];
    };
    std::vector<rep> node_poly{F::one};
    for (std::size_t j = 0; j < bn.m; ++j) {
      const std::vector<rep> leaf{F::neg(leaf_x(j)), F::one};
      node_poly = polymul<F>(std::span<const rep>(node_poly),
                             std::span<const rep>(leaf));
    }
    for (std::size_t j = 0; j < bn.m; ++j) {
      const std::vector<rep> leaf{F::neg(leaf_x(j)), F::one};
      auto basis = poly_divrem<F>(std::span<const rep>(node_poly),
                                  std::span<const rep>(leaf))
                       .quotient;
      basis.resize(bn.m, F::zero);
      for (std::size_t r = 0; r < bn.m; ++r) {
        bn.mat[r * bn.fs + j] = basis[r];
      }
    }
    std::size_t patched = 1;

    // Walk the ancestors: overwrite the dirty child operand at each
    // stored node, refresh its cached transform, and re-multiply the
    // node's polynomial for the next level. Carried nodes store nothing —
    // the child polynomial passes through.
    std::vector<rep> cur_poly = std::move(node_poly);
    std::size_t child = bi;
    for (std::size_t lv = 0; lv < f.interp_levels.size(); ++lv) {
      auto& level = f.interp_levels[lv];
      if (level.empty()) continue;  // at or below the collapsed base
      const std::size_t pi = child / 2;
      Node& nd = level[pi];
      if (nd.carry) {
        child = pi;
        continue;
      }
      Operand& op = child % 2 == 0 ? nd.poly_left : nd.poly_right;
      op.coeffs = cur_poly;
      op.log_n = 0;
      op.evals.clear();
      op.evals_shoup.clear();
      finalize_operand(f, op, nd.leaves);
      cur_poly = polymul<F>(std::span<const rep>(nd.poly_left.coeffs),
                            std::span<const rep>(nd.poly_right.coeffs));
      ++patched;
      child = pi;
    }
    return patched;
  }

  std::vector<rep> xs_, betas_;
  /// Guards the lazily built components below — only the POINTERS: a
  /// built Bary/Fast is immutable, so the references bary()/fast() hand
  /// out are safe to use unlocked.
  mutable lsa::sync::Mutex mu_;
  mutable std::unique_ptr<Bary> bary_ LSA_GUARDED_BY(mu_);
  mutable std::unique_ptr<Fast> fast_ LSA_GUARDED_BY(mu_);
  bool patched_ = false;
  std::size_t patched_nodes_ = 0;
};

}  // namespace lsa::coding
