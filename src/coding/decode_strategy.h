// Decode-strategy selector shared by the coding layer and protocol::Params.
//
// Lives in its own tiny header so protocol/params.h can carry a strategy
// knob without pulling the full decode plane into every translation unit.
#pragma once

namespace lsa::coding {

/// Server-side aggregate-decode kernel selection (coding/aggregate_decode.h
/// documents the complexity trade-offs; coding/decode_plan.h implements the
/// plan-based strategies).
enum class DecodeStrategy {
  kLagrange,     ///< textbook per-beta weights — reference kernel
  kBarycentric,  ///< shared-denominator weights + blocked GEMM
  kNtt,          ///< legacy per-coordinate fast interpolate/evaluate
  kBatchedNtt,   ///< plan-cached batched fast interpolate/evaluate
  kAuto,         ///< pick kBarycentric / kBatchedNtt from (U, T, seg_len)
};

[[nodiscard]] constexpr const char* to_string(DecodeStrategy s) {
  switch (s) {
    case DecodeStrategy::kLagrange: return "lagrange";
    case DecodeStrategy::kBarycentric: return "barycentric";
    case DecodeStrategy::kNtt: return "ntt";
    case DecodeStrategy::kBatchedNtt: return "batched-ntt";
    case DecodeStrategy::kAuto: return "auto";
  }
  return "?";
}

}  // namespace lsa::coding
