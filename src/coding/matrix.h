// Dense matrices over F_q with Gaussian elimination.
//
// Used by tests to verify the MDS and T-privacy conditions of the mask codec
// (every U×U submatrix of the encoding matrix invertible; bottom-T-row
// submatrices invertible) and as a reference decoder.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/error.h"

namespace lsa::coding {

template <class F>
class Matrix {
 public:
  using rep = typename F::rep;

  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, F::zero) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] rep& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const rep& at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Returns the submatrix with the given rows and columns.
  [[nodiscard]] Matrix submatrix(std::span<const std::size_t> rs,
                                 std::span<const std::size_t> cs) const {
    Matrix out(rs.size(), cs.size());
    for (std::size_t i = 0; i < rs.size(); ++i) {
      for (std::size_t j = 0; j < cs.size(); ++j) {
        out.at(i, j) = at(rs[i], cs[j]);
      }
    }
    return out;
  }

  /// Rank via Gaussian elimination (destroys a copy).
  [[nodiscard]] std::size_t rank() const {
    Matrix m = *this;
    std::size_t rank = 0;
    for (std::size_t col = 0; col < cols_ && rank < rows_; ++col) {
      // Find pivot.
      std::size_t pivot = rank;
      while (pivot < rows_ && m.at(pivot, col) == F::zero) ++pivot;
      if (pivot == rows_) continue;
      if (pivot != rank) {
        for (std::size_t c = 0; c < cols_; ++c) {
          std::swap(m.at(pivot, c), m.at(rank, c));
        }
      }
      const rep inv_p = F::inv(m.at(rank, col));
      for (std::size_t c = col; c < cols_; ++c) {
        m.at(rank, c) = F::mul(m.at(rank, c), inv_p);
      }
      for (std::size_t r = 0; r < rows_; ++r) {
        if (r == rank || m.at(r, col) == F::zero) continue;
        const rep f = m.at(r, col);
        for (std::size_t c = col; c < cols_; ++c) {
          m.at(r, c) = F::sub(m.at(r, c), F::mul(f, m.at(rank, c)));
        }
      }
      ++rank;
    }
    return rank;
  }

  [[nodiscard]] bool is_invertible() const {
    return rows_ == cols_ && rank() == rows_;
  }

  /// y = M x.
  [[nodiscard]] std::vector<rep> apply(std::span<const rep> x) const {
    lsa::require<lsa::CodingError>(x.size() == cols_, "matvec: size mismatch");
    std::vector<rep> y(rows_, F::zero);
    for (std::size_t r = 0; r < rows_; ++r) {
      rep acc = F::zero;
      for (std::size_t c = 0; c < cols_; ++c) {
        acc = F::add(acc, F::mul(at(r, c), x[c]));
      }
      y[r] = acc;
    }
    return y;
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<rep> data_;
};

/// Solves M x = b by Gaussian elimination. Returns one solution with free
/// variables set to zero, or std::nullopt when the system is inconsistent.
/// (Square invertible systems yield the unique solution.)
template <class F>
[[nodiscard]] std::optional<std::vector<typename F::rep>> solve_linear(
    const Matrix<F>& m_in, std::span<const typename F::rep> b) {
  using rep = typename F::rep;
  const std::size_t rows = m_in.rows();
  const std::size_t cols = m_in.cols();
  lsa::require<lsa::CodingError>(b.size() == rows, "solve: rhs size mismatch");

  // Augmented matrix [M | b], reduced to row-echelon form.
  Matrix<F> m(rows, cols + 1);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m.at(r, c) = m_in.at(r, c);
    m.at(r, cols) = b[r];
  }
  std::vector<std::size_t> pivot_col;
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols && rank < rows; ++col) {
    std::size_t pivot = rank;
    while (pivot < rows && m.at(pivot, col) == F::zero) ++pivot;
    if (pivot == rows) continue;
    if (pivot != rank) {
      for (std::size_t c = 0; c <= cols; ++c) {
        std::swap(m.at(pivot, c), m.at(rank, c));
      }
    }
    const rep inv_p = F::inv(m.at(rank, col));
    for (std::size_t c = col; c <= cols; ++c) {
      m.at(rank, c) = F::mul(m.at(rank, c), inv_p);
    }
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == rank || m.at(r, col) == F::zero) continue;
      const rep f = m.at(r, col);
      for (std::size_t c = col; c <= cols; ++c) {
        m.at(r, c) = F::sub(m.at(r, c), F::mul(f, m.at(rank, c)));
      }
    }
    pivot_col.push_back(col);
    ++rank;
  }
  // Inconsistency: a zero row with nonzero rhs.
  for (std::size_t r = rank; r < rows; ++r) {
    if (m.at(r, cols) != F::zero) return std::nullopt;
  }
  std::vector<rep> x(cols, F::zero);
  for (std::size_t r = 0; r < rank; ++r) {
    x[pivot_col[r]] = m.at(r, cols);
  }
  return x;
}

/// U×N Vandermonde matrix V[k][j] = alpha_j^k over distinct points alpha.
template <class F>
[[nodiscard]] Matrix<F> vandermonde(std::span<const typename F::rep> alphas,
                                    std::size_t rows) {
  Matrix<F> m(rows, alphas.size());
  for (std::size_t j = 0; j < alphas.size(); ++j) {
    typename F::rep p = F::one;
    for (std::size_t k = 0; k < rows; ++k) {
      m.at(k, j) = p;
      p = F::mul(p, alphas[j]);
    }
  }
  return m;
}

}  // namespace lsa::coding
