// FastSecAgg (Kadhe et al. 2020) — the FFT-based multi-secret-sharing
// baseline the paper discusses in Related Works and Remark 4.
//
// Mechanism: instead of masking the model and recovering masks, each user
// secret-shares the *model itself* with a ramp (packed) secret-sharing
// scheme: x_i is split into K segments, padded with T uniformly random
// segments, and encoded into N shares — exactly the T-private MDS encoding
// LightSecAgg applies to its *mask* (coding/mask_codec.h), here applied to
// the data. Every user sends share j to user j; each user sums the shares it
// received from the surviving set and uploads one aggregated share; the
// server decodes the aggregate model from any K + T of them in one shot.
//
// Trade-offs this implementation makes measurable (paper: FastSecAgg
// "provides lower privacy and dropout guarantees compared to the other
// state-of-the-art protocols"):
//   * the guarantee budget is K + T + D <= N: at a fixed cohort size,
//     raising the rate K (smaller shares) *spends* privacy or dropout
//     tolerance, while LightSecAgg's masking layer decouples the model
//     upload (always d) from the sharing rate;
//   * there is no small "masked model" upload: the entire model travels as
//     N shares of size d/K per user, so the sharing phase is *online* —
//     it cannot be precomputed before local training finishes, unlike
//     LightSecAgg's offline mask exchange (the ledger reflects this: the
//     share exchange is logged in the Upload phase).
//   * like LightSecAgg the recovery is one-shot and independent of the
//     number of dropped users.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "coding/mask_codec.h"
#include "common/error.h"
#include "crypto/prg.h"
#include "field/field_vec.h"
#include "field/flat_matrix.h"
#include "net/ledger.h"
#include "protocol/params.h"
#include "protocol/secure_aggregator.h"

namespace lsa::protocol {

template <class F>
class FastSecAgg final : public SecureAggregator<F> {
 public:
  using rep = typename F::rep;

  /// Params interpretation: privacy = T, dropout = D; the packing rate is
  /// K = U - T where U = target_survivors (defaulting to N - D), i.e. the
  /// same N - D >= U > T >= 0 envelope as LightSecAgg with the model
  /// taking the place of the mask.
  FastSecAgg(Params params, std::uint64_t seed,
             lsa::net::Ledger* ledger = nullptr)
      : params_(params), seed_(seed), ledger_(ledger) {
    params_.validate_and_resolve();
    codec_.emplace(params_.num_users, params_.target_survivors,
                   params_.privacy, params_.model_dim);
  }

  [[nodiscard]] std::string_view name() const override {
    return "FastSecAgg";
  }
  [[nodiscard]] const Params& params() const override { return params_; }

  /// Packing rate K: segments of actual model data per share polynomial.
  [[nodiscard]] std::size_t packing_rate() const {
    return params_.num_segments();
  }

  [[nodiscard]] std::vector<rep> run_round(
      const std::vector<std::vector<rep>>& inputs,
      const std::vector<bool>& dropped) override {
    const lsa::field::simd::ScopedSimdPolicy simd_guard(params_.simd);
    const std::size_t n = params_.num_users;
    const std::size_t u = params_.target_survivors;
    const std::size_t t = params_.privacy;
    const std::size_t seg = codec_->segment_len();
    lsa::require<lsa::ProtocolError>(inputs.size() == n,
                                     "fastsecagg: wrong number of inputs");
    lsa::require<lsa::ProtocolError>(dropped.size() == n,
                                     "fastsecagg: wrong dropout vector");

    std::vector<std::size_t> survivors;
    for (std::size_t i = 0; i < n; ++i) {
      if (!dropped[i]) survivors.push_back(i);
    }
    lsa::require<lsa::ProtocolError>(
        survivors.size() >= u,
        "fastsecagg: fewer than U = K + T survivors — unrecoverable round");

    // ---- Phase 1 (online): ramp-share the models into one flat arena,
    // row j*N + i = [x_i]_j (holder j's shares are a contiguous block).
    // Logged in the Upload phase: the model must exist before it can be
    // shared, so none of this work can overlap local training. One encode
    // task per user across params.exec.
    const std::uint64_t round = round_counter_++;
    const auto& pol = params_.exec;
    held_.reset_for_overwrite(n * n, seg);
    pol.run(n, [&](std::size_t i) {
      auto prg_seed = lsa::crypto::derive_subseed(
          lsa::crypto::seed_from_u64(seed_ ^
                                     (0xfa57ull + i * 0x9e3779b97f4a7c15ull)),
          round);
      lsa::crypto::Prg prg(prg_seed);
      codec_->encode_into(std::span<const rep>(inputs[i]), prg, held_,
                          /*base=*/i, /*stride=*/n, pol.chunk_reps);
      // Per-user ledger entries logged from inside the parallel encode
      // loop (sharded atomic ledger: totals exact under any interleaving).
      if (ledger_ != nullptr) {
        ledger_->add_compute(lsa::net::Phase::kUpload, i,
                             lsa::net::CompKind::kPrgExpand,
                             static_cast<std::uint64_t>(t) * seg, true);
        ledger_->add_compute(lsa::net::Phase::kUpload, i,
                             lsa::net::CompKind::kMaskEncode,
                             static_cast<std::uint64_t>(n) * u * seg, true);
        for (std::size_t j = 0; j < n; ++j) {
          if (j != i) {
            ledger_->add_message(lsa::net::Phase::kUpload, i, j, seg, true);
          }
        }
      }
    });

    // ---- Phase 2: aggregate-share upload from the survivors. ----
    // Server announces U1; user j sums the shares of surviving users only —
    // one blocked streaming pass over its arena row block per responder.
    std::vector<std::size_t> responders(survivors.begin(),
                                        survivors.begin() + u);
    agg_shares_.reset(u, seg);
    pol.run(u, [&](std::size_t r) {
      const std::size_t j = responders[r];
      std::vector<const rep*> rows;
      rows.reserve(survivors.size());
      for (const std::size_t i : survivors) {
        rows.push_back(held_.row_ptr(j * n + i));
      }
      lsa::field::add_accumulate_blocked<F>(
          agg_shares_.row(r), std::span<const rep* const>(rows),
          pol.chunk_reps);
      if (ledger_ != nullptr) {
        ledger_->add_compute(
            lsa::net::Phase::kRecovery, j, lsa::net::CompKind::kFieldAddVec,
            static_cast<std::uint64_t>(survivors.size()) * seg, true);
        ledger_->add_message(lsa::net::Phase::kRecovery, j,
                             ledger_->server_id(), seg, true);
      }
    });

    // ---- Phase 3: one-shot decode of the aggregate *model*. ----
    auto aggregate = codec_->decode_aggregate(responders, agg_shares_, pol,
                                              params_.decode);
    if (ledger_ != nullptr) {
      ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                           lsa::net::CompKind::kMaskDecode,
                           static_cast<std::uint64_t>(u) * (u - t) * seg,
                           true);
      ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                           lsa::net::CompKind::kMaskDecode,
                           static_cast<std::uint64_t>(u) * u +
                               static_cast<std::uint64_t>(u) * (u - t),
                           false);
    }
    return aggregate;
  }

 private:
  Params params_;
  std::uint64_t seed_;
  lsa::net::Ledger* ledger_;
  std::optional<lsa::coding::MaskCodec<F>> codec_;
  std::uint64_t round_counter_ = 0;
  // Round arenas, reused across rounds (reset keeps capacity).
  lsa::field::FlatMatrix<F> held_;        ///< row j*N + i = [x_i]_j
  lsa::field::FlatMatrix<F> agg_shares_;  ///< row r = responder r's sum
};

}  // namespace lsa::protocol
