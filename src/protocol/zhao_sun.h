// The trusted-third-party one-shot scheme of Zhao & Sun (2021), the closest
// prior work to LightSecAgg's one-shot recovery (paper Appendix C, Table 6).
//
// Idea: *pre-compute* the aggregate-mask recovery for every dropout pattern.
// A trusted third party (TTP) draws each user's mask z_i and, for every
// possible surviving set S (|S| >= U), encodes the set's aggregate mask
// sum_{i in S} z_i — padded with T fresh noise segments — into MDS shares
// distributed to the members of S. At round time the survivors simply return
// their pre-stored share for the realized set and the server decodes in one
// shot, exactly like LightSecAgg's recovery phase.
//
// The paper's critique, which this implementation makes measurable:
//   * randomness: N(U-T) + T * sum_{u=U..N} C(N,u) symbols — exponential in
//     N (fresh noise per subset), vs N*U for LightSecAgg;
//   * per-user storage: (U-T) + sum_{u=U..N} C(N,u)*u/N symbols — one share
//     per subset the user belongs to, vs (U-T) + N;
//   * trust: a TTP must generate and distribute all of it.
// The class exposes exact counters (`total_randomness_symbols`,
// `storage_symbols`) next to the closed-form predictions so Table 6 can be
// regenerated from a real execution (bench/table6_storage).
//
// Subsets are enumerated as bitmasks, so the implementation deliberately
// caps N (kMaxUsers): the exponential setup cost *is* the result.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "coding/mask_codec.h"
#include "common/error.h"
#include "common/rng.h"
#include "field/field_vec.h"
#include "field/flat_matrix.h"
#include "field/parallel_vec.h"
#include "field/random_field.h"
#include "protocol/params.h"
#include "protocol/secure_aggregator.h"

namespace lsa::protocol {

template <class F>
class ZhaoSunOneShot final : public SecureAggregator<F> {
 public:
  using rep = typename F::rep;

  /// Hard cap on N: setup enumerates all C(N, >=U) surviving sets.
  static constexpr std::size_t kMaxUsers = 20;

  ZhaoSunOneShot(Params params, std::uint64_t ttp_seed)
      : params_(params) {
    params_.validate_and_resolve();
    lsa::require<lsa::ConfigError>(
        params_.num_users <= kMaxUsers,
        "zhao-sun: subset enumeration is exponential; N capped at 20 "
        "(the blow-up is the point of Table 6)");
    const std::size_t n = params_.num_users;
    const std::size_t u = params_.target_survivors;
    const std::size_t d = params_.model_dim;
    codec_.emplace(n, u, params_.privacy, d);

    // --- TTP setup. ---
    // Masks live in one N x d arena; each subset's encode runs through a
    // reused flat scratch arena (the per-subset *storage* stays per-user —
    // the exponential blow-up is the point of Table 6).
    lsa::common::Xoshiro256ss rng(ttp_seed);
    masks_.reset(n, d);
    for (std::size_t i = 0; i < n; ++i) {
      lsa::field::fill_uniform<F>(masks_.row(i), rng);
    }

    shares_.resize(n);
    const std::size_t seg = codec_->segment_len();
    lsa::field::FlatMatrix<F> noise(params_.privacy, seg);
    lsa::field::FlatMatrix<F> encoded(n, seg);
    std::vector<rep> agg(d);
    const std::uint32_t full = (1u << n) - 1;  // n <= kMaxUsers = 20
    for (std::uint32_t set = 1; set <= full; ++set) {
      const auto members = members_of(set);
      if (members.size() < u) continue;
      ++num_subsets_;

      std::fill(agg.begin(), agg.end(), F::zero);
      std::vector<const rep*> rows;
      rows.reserve(members.size());
      for (const std::size_t i : members) rows.push_back(masks_.row_ptr(i));
      lsa::field::add_accumulate_blocked<F>(std::span<rep>(agg),
                                            std::span<const rep* const>(rows));
      for (std::size_t k = 0; k < params_.privacy; ++k) {
        lsa::field::fill_uniform<F>(noise.row(k), rng);
      }
      codec_->encode_with_noise_into(std::span<const rep>(agg), noise,
                                     encoded);
      for (const std::size_t j : members) {
        shares_[j].emplace(set, encoded.row_copy(j));
      }
    }
  }

  [[nodiscard]] std::string_view name() const override {
    return "ZhaoSun-TTP";
  }
  [[nodiscard]] const Params& params() const override { return params_; }

  [[nodiscard]] std::vector<rep> run_round(
      const std::vector<std::vector<rep>>& inputs,
      const std::vector<bool>& dropped) override {
    const lsa::field::simd::ScopedSimdPolicy simd_guard(params_.simd);
    const std::size_t n = params_.num_users;
    const std::size_t d = params_.model_dim;
    const std::size_t u = params_.target_survivors;
    lsa::require<lsa::ProtocolError>(inputs.size() == n,
                                     "zhao-sun: wrong number of inputs");
    lsa::require<lsa::ProtocolError>(dropped.size() == n,
                                     "zhao-sun: wrong dropout vector");

    std::uint32_t set = 0;
    std::vector<std::size_t> survivors;
    for (std::size_t i = 0; i < n; ++i) {
      if (!dropped[i]) {
        set |= (1u << i);
        survivors.push_back(i);
      }
    }
    lsa::require<lsa::ProtocolError>(
        survivors.size() >= u,
        "zhao-sun: fewer than U survivors — unrecoverable round");

    // Masking & upload (identical to LightSecAgg's phase 2): one fused
    // 2|U1|-row column sum over the inputs and the mask arena rows.
    std::vector<rep> sum_masked(d, F::zero);
    {
      std::vector<const rep*> rows;
      rows.reserve(2 * survivors.size());
      for (const std::size_t i : survivors) {
        lsa::require<lsa::ProtocolError>(inputs[i].size() == d,
                                         "zhao-sun: bad input length");
        rows.push_back(inputs[i].data());
        rows.push_back(masks_.row_ptr(i));
      }
      lsa::field::add_accumulate<F>(std::span<rep>(sum_masked),
                                    std::span<const rep* const>(rows),
                                    params_.exec);
    }

    // One-shot recovery from the pre-distributed shares for this exact set
    // (decoded straight off the stored rows, no copies).
    std::vector<std::size_t> responders(survivors.begin(),
                                        survivors.begin() + u);
    std::vector<const rep*> share_rows;
    share_rows.reserve(u);
    for (const std::size_t j : responders) {
      const auto it = shares_[j].find(set);
      lsa::require<lsa::ProtocolError>(
          it != shares_[j].end(),
          "zhao-sun: TTP did not pre-distribute a share for this set");
      share_rows.push_back(it->second.data());
    }
    auto agg_mask = codec_->decode_aggregate_rows(
        responders, std::span<const rep* const>(share_rows), params_.exec,
        params_.decode);
    lsa::field::sub_inplace<F>(std::span<rep>(sum_masked),
                               std::span<const rep>(agg_mask));
    return sum_masked;
  }

  // --- Table 6 counters (units: symbols of F^(d/(U-T)), as in the paper) ---

  /// Symbols of randomness the TTP generated: the N masks (U-T symbols
  /// each) plus T fresh noise symbols for every supported surviving set.
  [[nodiscard]] std::uint64_t total_randomness_symbols() const {
    const auto n = static_cast<std::uint64_t>(params_.num_users);
    const auto seg_count =
        static_cast<std::uint64_t>(params_.num_segments());
    return n * seg_count +
           static_cast<std::uint64_t>(params_.privacy) * num_subsets_;
  }

  /// Symbols user j must store offline: its own mask plus one encoded share
  /// per surviving set containing j.
  [[nodiscard]] std::uint64_t storage_symbols(std::size_t user) const {
    lsa::require<lsa::ProtocolError>(user < shares_.size(),
                                     "zhao-sun: user out of range");
    return static_cast<std::uint64_t>(params_.num_segments()) +
           static_cast<std::uint64_t>(shares_[user].size());
  }

  /// Number of surviving sets the TTP prepared: sum_{u=U..N} C(N,u).
  [[nodiscard]] std::uint64_t num_subsets() const { return num_subsets_; }

  // --- Closed-form predictions (paper Table 6), for cross-checking. ---

  [[nodiscard]] static std::uint64_t choose(std::uint64_t n,
                                            std::uint64_t k) {
    if (k > n) return 0;
    std::uint64_t r = 1;
    for (std::uint64_t i = 1; i <= k; ++i) {
      r = r * (n - k + i) / i;
    }
    return r;
  }

  [[nodiscard]] static std::uint64_t predicted_num_subsets(std::size_t n,
                                                           std::size_t u) {
    std::uint64_t s = 0;
    for (std::size_t m = u; m <= n; ++m) s += choose(n, m);
    return s;
  }

  [[nodiscard]] static std::uint64_t predicted_storage_symbols(
      std::size_t n, std::size_t u, std::size_t t) {
    // (U-T) + sum_{m=U..N} C(N-1, m-1): subsets of size m containing a
    // fixed user.
    std::uint64_t s = u - t;
    for (std::size_t m = u; m <= n; ++m) s += choose(n - 1, m - 1);
    return s;
  }

 private:
  [[nodiscard]] std::vector<std::size_t> members_of(std::uint32_t set) const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < params_.num_users; ++i) {
      if (set & (1u << i)) out.push_back(i);
    }
    return out;
  }

  Params params_;
  std::optional<lsa::coding::MaskCodec<F>> codec_;
  lsa::field::FlatMatrix<F> masks_;  ///< row i = z_i
  /// shares_[j][set_bitmask] = user j's pre-stored share for that set.
  std::vector<std::unordered_map<std::uint32_t, std::vector<rep>>> shares_;
  std::uint64_t num_subsets_ = 0;
};

}  // namespace lsa::protocol
