// Secure-aggregation protocol parameters (paper §4.1).
#pragma once

#include <cstddef>

#include "coding/decode_strategy.h"
#include "common/error.h"
#include "field/simd/simd_policy.h"
#include "sys/exec_policy.h"

namespace lsa::protocol {

/// Design parameters shared by all protocols. The paper's constraint is
/// N - D >= U > T >= 0 (LightSecAgg) and T + D < N (all protocols,
/// Theorem 1).
struct Params {
  std::size_t num_users = 0;       ///< N
  std::size_t privacy = 0;         ///< T: tolerated colluding users
  std::size_t dropout = 0;         ///< D: tolerated dropped users
  std::size_t target_survivors = 0;  ///< U (LightSecAgg); 0 = pick default
  std::size_t model_dim = 0;       ///< d

  /// How the round's data-parallel phases execute (per-user encode fan-out,
  /// blocked share aggregation, one-shot decode). Default: serial, default
  /// cache chunking — results are bit-identical under every policy.
  lsa::sys::ExecPolicy exec{};

  /// Server-side decode kernel. kAuto picks barycentric GEMM or the
  /// batched-NTT plane from (U, T, seg_len); every choice is bit-identical
  /// (coding/decode_strategy.h). Plans are cached per session keyed on the
  /// survivor set, so repeated rounds pay setup once.
  lsa::coding::DecodeStrategy decode = lsa::coding::DecodeStrategy::kAuto;

  /// Steady-state cohort mode (ACCESS-FL-style, see README "Steady-state
  /// cohorts"): user devices run offline encoding + mask-share
  /// distribution ONCE per cohort epoch instead of once per round, and
  /// every subsequent round is only masked-upload -> fan-in -> cached/
  /// patched-plan decode. Within an epoch a device reuses one epoch mask
  /// (derived from (seed, id, epoch)), which the decode cancels exactly —
  /// aggregates stay bit-identical to per-round mode — at the documented
  /// privacy trade: the server can difference consecutive masked uploads
  /// of a stable cohort member. Epochs advance on membership change
  /// (Session::advance_epoch fans out to the devices), re-triggering the
  /// offline setup. Server machines need no flag — they already key state
  /// per round and shares by the wire round field (the epoch, for shares).
  bool persistent_cohort = false;

  /// Pipelined round execution depth for the sharded server's sync
  /// sessions (paper §6, Fig. 5: the offline mask phase is independent of
  /// the model, so round r+1's mask generation + encode + share
  /// distribution can run while round r is still in fan-in/decode).
  ///   1 = fully sequential rounds — today's tested reference behavior;
  ///   2 = two rounds in flight: the shard driver overlaps round r's
  ///       online stage (upload fan-in, recovery, one-shot decode) with
  ///       round r+1's offline stage on the same pool. Share stores are
  ///       double-buffered by round parity (see README "Pipelined
  ///       rounds"); aggregates stay bit-identical to depth 1 under every
  ///       dropout pattern.
  /// Only server::Session consumes depths > 1; runtime::Network stays the
  /// serial reference regardless.
  std::size_t pipeline = 1;

  /// SIMD kernel dispatch for every field op this round touches. kAuto
  /// uses the best ISA the host supports (field/simd/dispatch.h);
  /// kForceScalar pins the branch-free scalar reference kernels — results
  /// are bit-identical either way, so this is a debugging/benchmark knob,
  /// not a correctness one. Protocol run_round entries establish the
  /// policy on the calling thread and ExecPolicy re-establishes it inside
  /// pool workers.
  lsa::field::simd::SimdPolicy simd = lsa::field::simd::SimdPolicy::kAuto;

  /// Validates the common constraints and resolves U if left at 0.
  /// Default U = N - D (the most dropout-tolerant choice); callers tuning
  /// for speed may pick any U in (T, N - D] — the paper finds U ~ 0.7N best
  /// for p <= 0.3 (§7.2, "Impact of U").
  void validate_and_resolve() {
    lsa::require<lsa::ProtocolError>(num_users >= 2,
                                     "params: need at least 2 users");
    lsa::require<lsa::ProtocolError>(model_dim >= 1, "params: empty model");
    lsa::require<lsa::ProtocolError>(
        privacy + dropout < num_users,
        "params: need T + D < N (Theorem 1)");
    if (target_survivors == 0) target_survivors = num_users - dropout;
    lsa::require<lsa::ProtocolError>(
        target_survivors > privacy,
        "params: need U > T");
    lsa::require<lsa::ProtocolError>(
        target_survivors <= num_users - dropout,
        "params: need U <= N - D");
    lsa::require<lsa::ProtocolError>(
        pipeline >= 1 && pipeline <= 2,
        "params: pipeline depth must be 1 (sequential) or 2 (the share "
        "stores are double-buffered by round parity)");
  }

  [[nodiscard]] std::size_t num_segments() const {
    return target_survivors - privacy;  // U - T
  }
};

}  // namespace lsa::protocol
