// Secure-aggregation protocol parameters (paper §4.1).
#pragma once

#include <cstddef>

#include "coding/decode_strategy.h"
#include "common/error.h"
#include "field/simd/simd_policy.h"
#include "sys/exec_policy.h"

namespace lsa::protocol {

/// Design parameters shared by all protocols. The paper's constraint is
/// N - D >= U > T >= 0 (LightSecAgg) and T + D < N (all protocols,
/// Theorem 1).
struct Params {
  std::size_t num_users = 0;       ///< N
  std::size_t privacy = 0;         ///< T: tolerated colluding users
  std::size_t dropout = 0;         ///< D: tolerated dropped users
  std::size_t target_survivors = 0;  ///< U (LightSecAgg); 0 = pick default
  std::size_t model_dim = 0;       ///< d

  /// How the round's data-parallel phases execute (per-user encode fan-out,
  /// blocked share aggregation, one-shot decode). Default: serial, default
  /// cache chunking — results are bit-identical under every policy.
  lsa::sys::ExecPolicy exec{};

  /// Server-side decode kernel. kAuto picks barycentric GEMM or the
  /// batched-NTT plane from (U, T, seg_len); every choice is bit-identical
  /// (coding/decode_strategy.h). Plans are cached per session keyed on the
  /// survivor set, so repeated rounds pay setup once.
  lsa::coding::DecodeStrategy decode = lsa::coding::DecodeStrategy::kAuto;

  /// SIMD kernel dispatch for every field op this round touches. kAuto
  /// uses the best ISA the host supports (field/simd/dispatch.h);
  /// kForceScalar pins the branch-free scalar reference kernels — results
  /// are bit-identical either way, so this is a debugging/benchmark knob,
  /// not a correctness one. Protocol run_round entries establish the
  /// policy on the calling thread and ExecPolicy re-establishes it inside
  /// pool workers.
  lsa::field::simd::SimdPolicy simd = lsa::field::simd::SimdPolicy::kAuto;

  /// Validates the common constraints and resolves U if left at 0.
  /// Default U = N - D (the most dropout-tolerant choice); callers tuning
  /// for speed may pick any U in (T, N - D] — the paper finds U ~ 0.7N best
  /// for p <= 0.3 (§7.2, "Impact of U").
  void validate_and_resolve() {
    lsa::require<lsa::ProtocolError>(num_users >= 2,
                                     "params: need at least 2 users");
    lsa::require<lsa::ProtocolError>(model_dim >= 1, "params: empty model");
    lsa::require<lsa::ProtocolError>(
        privacy + dropout < num_users,
        "params: need T + D < N (Theorem 1)");
    if (target_survivors == 0) target_survivors = num_users - dropout;
    lsa::require<lsa::ProtocolError>(
        target_survivors > privacy,
        "params: need U > T");
    lsa::require<lsa::ProtocolError>(
        target_survivors <= num_users - dropout,
        "params: need U <= N - D");
  }

  [[nodiscard]] std::size_t num_segments() const {
    return target_survivors - privacy;  // U - T
  }
};

}  // namespace lsa::protocol
