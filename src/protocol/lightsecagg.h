// LightSecAgg — the paper's contribution (§4.1, Algorithm 1).
//
// Design shift vs SecAgg: instead of reconstructing the *seeds* of dropped
// users' masks, each user protects its model with one locally generated mask
// z_i whose MDS-encoded shares are distributed offline. After dropouts, each
// surviving user returns the *sum* of the encoded shares it holds for the
// surviving set; by linearity of MDS coding the server decodes the aggregate
// mask sum_{i in U1} z_i in ONE shot from any U responses — server cost
// independent of the number of dropped users.
//
// Phases (all functionally executed; traffic/compute logged to net::Ledger):
//   1. Offline encoding & sharing: z_i ~ U(F_q^d), partitioned into U-T
//      segments, padded with T random segments, MDS-encoded into N shares
//      [~z_i]_j; share j goes to user j.
//   2. Masking & upload: ~x_i = x_i + z_i -> server.
//   3. One-shot recovery: server announces U1; each surviving user j sends
//      sum_{i in U1} [~z_i]_j; the server decodes from the first U responses
//      and subtracts the aggregate mask.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "coding/mask_codec.h"
#include "common/error.h"
#include "crypto/prg.h"
#include "field/field_vec.h"
#include "field/random_field.h"
#include "net/ledger.h"
#include "protocol/secure_aggregator.h"

namespace lsa::protocol {

template <class F>
class LightSecAgg final : public SecureAggregator<F> {
 public:
  using rep = typename F::rep;

  /// verify_redundant: when an extra responder beyond U is available, the
  /// server decodes twice from different share subsets and cross-checks
  /// (MaskCodec::decode_aggregate_verified) — detecting tampered or
  /// corrupted aggregated shares at the cost of one additional response.
  LightSecAgg(Params params, std::uint64_t master_seed,
              lsa::net::Ledger* ledger = nullptr,
              bool verify_redundant = false)
      : params_(params),
        master_seed_(master_seed),
        ledger_(ledger),
        verify_redundant_(verify_redundant) {
    params_.validate_and_resolve();
    codec_.emplace(params_.num_users, params_.target_survivors,
                   params_.privacy, params_.model_dim);
  }

  [[nodiscard]] std::string_view name() const override {
    return "LightSecAgg";
  }
  [[nodiscard]] const Params& params() const override { return params_; }
  [[nodiscard]] const lsa::coding::MaskCodec<F>& codec() const {
    return *codec_;
  }

  [[nodiscard]] std::vector<rep> run_round(
      const std::vector<std::vector<rep>>& inputs,
      const std::vector<bool>& dropped) override {
    const std::size_t n = params_.num_users;
    const std::size_t d = params_.model_dim;
    const std::size_t u = params_.target_survivors;
    const std::size_t t = params_.privacy;
    const std::size_t seg = codec_->segment_len();
    lsa::require<lsa::ProtocolError>(inputs.size() == n,
                                     "lightsecagg: wrong number of inputs");
    lsa::require<lsa::ProtocolError>(dropped.size() == n,
                                     "lightsecagg: wrong dropout vector");

    std::vector<std::size_t> survivors;
    for (std::size_t i = 0; i < n; ++i) {
      if (!dropped[i]) survivors.push_back(i);
    }
    lsa::require<lsa::ProtocolError>(
        survivors.size() >= u,
        "lightsecagg: fewer than U survivors — unrecoverable round");

    const std::uint64_t round = round_counter_++;

    // ---- Phase 1: offline encoding and sharing of local masks. ----
    // held_shares[j][i] = [~z_i]_j — what user j stores for user i.
    std::vector<std::vector<std::vector<rep>>> held_shares(
        n, std::vector<std::vector<rep>>(n));
    std::vector<std::vector<rep>> mask(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto seed = lsa::crypto::derive_subseed(
          lsa::crypto::seed_from_u64(master_seed_ ^
                                     (0x115aull + i * 0x9e3779b97f4a7c15ull)),
          round);
      lsa::crypto::Prg prg(seed);
      mask[i] = lsa::field::uniform_vector<F>(d, prg);
      auto shares = codec_->encode(std::span<const rep>(mask[i]), prg);
      for (std::size_t j = 0; j < n; ++j) {
        held_shares[j][i] = std::move(shares[j]);
      }
      if (ledger_ != nullptr) {
        // PRG: d mask elements + T noise segments.
        ledger_->add_compute(lsa::net::Phase::kOffline, i,
                             lsa::net::CompKind::kPrgExpand,
                             d + static_cast<std::uint64_t>(t) * seg, true);
        // Encode: N shares, each a U-term combination of length-seg vectors.
        ledger_->add_compute(lsa::net::Phase::kOffline, i,
                             lsa::net::CompKind::kMaskEncode,
                             static_cast<std::uint64_t>(n) * u * seg, true);
        for (std::size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          ledger_->add_message(lsa::net::Phase::kOffline, i, j, seg, true);
        }
      }
    }

    // ---- Phase 2: masking and uploading of local models. ----
    std::vector<rep> sum_masked(d, F::zero);
    for (std::size_t i : survivors) {
      auto masked = lsa::field::add<F>(std::span<const rep>(inputs[i]),
                                       std::span<const rep>(mask[i]));
      lsa::field::add_inplace<F>(std::span<rep>(sum_masked),
                                 std::span<const rep>(masked));
    }
    if (ledger_ != nullptr) {
      for (std::size_t i = 0; i < n; ++i) {
        ledger_->add_message(lsa::net::Phase::kUpload, i,
                             ledger_->server_id(), d, true);
        ledger_->add_compute(lsa::net::Phase::kUpload, i,
                             lsa::net::CompKind::kFieldAddVec, d, true);
      }
    }

    // ---- Phase 3: one-shot aggregate-mask recovery. ----
    // Server notifies survivors of U1; each survivor j returns
    // sum_{i in U1} [~z_i]_j. The server decodes from the first U responses
    // (U + 1 when verifying, to cross-check against tampering).
    const std::size_t want =
        verify_redundant_ ? std::min(u + 1, survivors.size()) : u;
    std::vector<std::size_t> responders(survivors.begin(),
                                        survivors.begin() + want);
    std::vector<std::vector<rep>> agg_shares;
    agg_shares.reserve(u);
    for (std::size_t j : responders) {
      std::vector<rep> acc(seg, F::zero);
      for (std::size_t i : survivors) {
        lsa::field::add_inplace<F>(std::span<rep>(acc),
                                   std::span<const rep>(held_shares[j][i]));
      }
      agg_shares.push_back(std::move(acc));
      if (ledger_ != nullptr) {
        ledger_->add_compute(
            lsa::net::Phase::kRecovery, j, lsa::net::CompKind::kFieldAddVec,
            static_cast<std::uint64_t>(survivors.size()) * seg, true);
        ledger_->add_message(lsa::net::Phase::kRecovery, j,
                             ledger_->server_id(), seg, true);
      }
    }

    auto agg_mask =
        (verify_redundant_ && responders.size() > u)
            ? codec_->decode_aggregate_verified(responders, agg_shares)
            : codec_->decode_aggregate(responders, agg_shares);
    if (ledger_ != nullptr) {
      // Decode: U-T output segments, each a U-term combination (d*U work),
      // plus the barycentric weight computation — O(U^2) shared denominators
      // + O(U (U-T)) per-beta numerators — independent of d
      // (coding/aggregate_decode.h, the default kBarycentric kernel).
      ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                           lsa::net::CompKind::kMaskDecode,
                           static_cast<std::uint64_t>(u) * (u - t) * seg,
                           true);
      ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                           lsa::net::CompKind::kMaskDecode,
                           static_cast<std::uint64_t>(u) * u +
                               static_cast<std::uint64_t>(u) * (u - t),
                           false);
      ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                           lsa::net::CompKind::kFieldAddVec, d, true);
    }

    lsa::field::sub_inplace<F>(std::span<rep>(sum_masked),
                               std::span<const rep>(agg_mask));
    return sum_masked;
  }

 private:
  Params params_;
  std::uint64_t master_seed_;
  lsa::net::Ledger* ledger_;
  bool verify_redundant_ = false;
  std::optional<lsa::coding::MaskCodec<F>> codec_;
  std::uint64_t round_counter_ = 0;
};

}  // namespace lsa::protocol
