// LightSecAgg — the paper's contribution (§4.1, Algorithm 1).
//
// Design shift vs SecAgg: instead of reconstructing the *seeds* of dropped
// users' masks, each user protects its model with one locally generated mask
// z_i whose MDS-encoded shares are distributed offline. After dropouts, each
// surviving user returns the *sum* of the encoded shares it holds for the
// surviving set; by linearity of MDS coding the server decodes the aggregate
// mask sum_{i in U1} z_i in ONE shot from any U responses — server cost
// independent of the number of dropped users.
//
// Phases (all functionally executed; traffic/compute logged to net::Ledger):
//   1. Offline encoding & sharing: z_i ~ U(F_q^d), partitioned into U-T
//      segments, padded with T random segments, MDS-encoded into N shares
//      [~z_i]_j; share j goes to user j.
//   2. Masking & upload: ~x_i = x_i + z_i -> server.
//   3. One-shot recovery: server announces U1; each surviving user j sends
//      sum_{i in U1} [~z_i]_j; the server decodes from the first U responses
//      and subtracts the aggregate mask.
//
// Data layout: the round's N x N share matrix lives in ONE flat arena
// (field::FlatMatrix) with row j*N + i = [~z_i]_j — holder j's shares are a
// contiguous row block, so phase 3's per-responder aggregation is a single
// streaming pass. Masks occupy a second N x d arena. Both arenas are reused
// across rounds (no per-round N^2 allocations), and phases 1-3 fan out over
// params.exec (per-user encode tasks, blocked column sums, parallel decode).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "coding/mask_codec.h"
#include "common/error.h"
#include "crypto/prg.h"
#include "field/field_vec.h"
#include "field/flat_matrix.h"
#include "field/parallel_vec.h"
#include "field/random_field.h"
#include "net/ledger.h"
#include "protocol/secure_aggregator.h"

namespace lsa::protocol {

template <class F>
class LightSecAgg final : public SecureAggregator<F> {
 public:
  using rep = typename F::rep;

  /// verify_redundant: when an extra responder beyond U is available, the
  /// server decodes twice from different share subsets and cross-checks
  /// (MaskCodec::decode_aggregate_verified) — detecting tampered or
  /// corrupted aggregated shares at the cost of one additional response.
  LightSecAgg(Params params, std::uint64_t master_seed,
              lsa::net::Ledger* ledger = nullptr,
              bool verify_redundant = false)
      : params_(params),
        master_seed_(master_seed),
        ledger_(ledger),
        verify_redundant_(verify_redundant) {
    params_.validate_and_resolve();
    codec_.emplace(params_.num_users, params_.target_survivors,
                   params_.privacy, params_.model_dim);
  }

  [[nodiscard]] std::string_view name() const override {
    return "LightSecAgg";
  }
  [[nodiscard]] const Params& params() const override { return params_; }
  [[nodiscard]] const lsa::coding::MaskCodec<F>& codec() const {
    return *codec_;
  }

  [[nodiscard]] std::vector<rep> run_round(
      const std::vector<std::vector<rep>>& inputs,
      const std::vector<bool>& dropped) override {
    const lsa::field::simd::ScopedSimdPolicy simd_guard(params_.simd);
    const std::size_t n = params_.num_users;
    const std::size_t d = params_.model_dim;
    const std::size_t u = params_.target_survivors;
    const std::size_t t = params_.privacy;
    const std::size_t seg = codec_->segment_len();
    const auto& pol = params_.exec;
    lsa::require<lsa::ProtocolError>(inputs.size() == n,
                                     "lightsecagg: wrong number of inputs");
    lsa::require<lsa::ProtocolError>(dropped.size() == n,
                                     "lightsecagg: wrong dropout vector");

    std::vector<std::size_t> survivors;
    for (std::size_t i = 0; i < n; ++i) {
      if (!dropped[i]) survivors.push_back(i);
    }
    lsa::require<lsa::ProtocolError>(
        survivors.size() >= u,
        "lightsecagg: fewer than U survivors — unrecoverable round");

    const std::uint64_t round = round_counter_++;

    // ---- Phase 1: offline encoding and sharing of local masks. ----
    // arena row j*N + i = [~z_i]_j — what user j stores for user i. One
    // task per user: draw z_i and its T noise segments from the user's PRG
    // (the same stream, in the same order, as the legacy per-user path)
    // and write the N shares into the user's disjoint row set. Per-user
    // ledger entries are logged from INSIDE the parallel region — the
    // sharded relaxed-atomic ledger makes the totals exact regardless of
    // interleaving (tests/net_test.cpp pins them at large N).
    masks_.reset_for_overwrite(n, d);
    held_.reset_for_overwrite(n * n, seg);
    pol.run(n, [&](std::size_t i) {
      auto seed = lsa::crypto::derive_subseed(
          lsa::crypto::seed_from_u64(master_seed_ ^
                                     (0x115aull + i * 0x9e3779b97f4a7c15ull)),
          round);
      lsa::crypto::Prg prg(seed);
      lsa::field::fill_uniform<F>(masks_.row(i), prg);
      codec_->encode_into(masks_.row(i), prg, held_, /*base=*/i,
                          /*stride=*/n, pol.chunk_reps);
      if (ledger_ != nullptr) {
        // PRG: d mask elements + T noise segments.
        ledger_->add_compute(lsa::net::Phase::kOffline, i,
                             lsa::net::CompKind::kPrgExpand,
                             d + static_cast<std::uint64_t>(t) * seg, true);
        // Encode: N shares, each a U-term combination of length-seg vectors.
        ledger_->add_compute(lsa::net::Phase::kOffline, i,
                             lsa::net::CompKind::kMaskEncode,
                             static_cast<std::uint64_t>(n) * u * seg, true);
        for (std::size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          ledger_->add_message(lsa::net::Phase::kOffline, i, j, seg, true);
        }
      }
    });

    // ---- Phase 2: masking and uploading of local models. ----
    // sum_masked = sum_{i in U1} (x_i + z_i), as one fused 2|U1|-row
    // column sum (field addition is associative: bit-identical to the
    // legacy two-pass order).
    std::vector<rep> sum_masked(d, F::zero);
    {
      std::vector<const rep*> rows;
      rows.reserve(2 * survivors.size());
      for (std::size_t i : survivors) {
        lsa::require<lsa::ProtocolError>(inputs[i].size() == d,
                                         "lightsecagg: bad input length");
        rows.push_back(inputs[i].data());
        rows.push_back(masks_.row_ptr(i));
      }
      lsa::field::add_accumulate<F>(std::span<rep>(sum_masked),
                                    std::span<const rep* const>(rows), pol);
    }
    if (ledger_ != nullptr) {
      for (std::size_t i = 0; i < n; ++i) {
        ledger_->add_message(lsa::net::Phase::kUpload, i,
                             ledger_->server_id(), d, true);
        ledger_->add_compute(lsa::net::Phase::kUpload, i,
                             lsa::net::CompKind::kFieldAddVec, d, true);
      }
    }

    // ---- Phase 3: one-shot aggregate-mask recovery. ----
    // Server notifies survivors of U1; each survivor j returns
    // sum_{i in U1} [~z_i]_j. The server decodes from the first U responses
    // (U + 1 when verifying, to cross-check against tampering). One task
    // per responder: holder j's shares are the contiguous arena row block
    // [j*N, (j+1)*N), filtered to the surviving owners.
    const std::size_t want =
        verify_redundant_ ? std::min(u + 1, survivors.size()) : u;
    std::vector<std::size_t> responders(survivors.begin(),
                                        survivors.begin() + want);
    agg_shares_.reset(want, seg);
    pol.run(want, [&](std::size_t r) {
      const std::size_t j = responders[r];
      std::vector<const rep*> rows;
      rows.reserve(survivors.size());
      for (std::size_t i : survivors) rows.push_back(held_.row_ptr(j * n + i));
      lsa::field::add_accumulate_blocked<F>(
          agg_shares_.row(r), std::span<const rep* const>(rows),
          pol.chunk_reps);
      if (ledger_ != nullptr) {
        ledger_->add_compute(
            lsa::net::Phase::kRecovery, j, lsa::net::CompKind::kFieldAddVec,
            static_cast<std::uint64_t>(survivors.size()) * seg, true);
        ledger_->add_message(lsa::net::Phase::kRecovery, j,
                             ledger_->server_id(), seg, true);
      }
    });

    auto agg_mask =
        (verify_redundant_ && responders.size() > u)
            ? codec_->decode_aggregate_verified(responders, agg_shares_, pol)
            : codec_->decode_aggregate(responders, agg_shares_, pol,
                                       params_.decode);
    if (ledger_ != nullptr) {
      // Decode: U-T output segments, each a U-term combination (d*U work),
      // plus the barycentric weight computation — O(U^2) shared denominators
      // + O(U (U-T)) per-beta numerators — independent of d
      // (coding/aggregate_decode.h, the default kBarycentric kernel).
      ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                           lsa::net::CompKind::kMaskDecode,
                           static_cast<std::uint64_t>(u) * (u - t) * seg,
                           true);
      ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                           lsa::net::CompKind::kMaskDecode,
                           static_cast<std::uint64_t>(u) * u +
                               static_cast<std::uint64_t>(u) * (u - t),
                           false);
      ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                           lsa::net::CompKind::kFieldAddVec, d, true);
    }

    lsa::field::sub_inplace<F>(std::span<rep>(sum_masked),
                               std::span<const rep>(agg_mask));
    return sum_masked;
  }

 private:
  Params params_;
  std::uint64_t master_seed_;
  lsa::net::Ledger* ledger_;
  bool verify_redundant_ = false;
  std::optional<lsa::coding::MaskCodec<F>> codec_;
  std::uint64_t round_counter_ = 0;
  // Round arenas, reused across rounds (reset keeps capacity).
  lsa::field::FlatMatrix<F> masks_;       ///< row i = z_i
  lsa::field::FlatMatrix<F> held_;        ///< row j*N + i = [~z_i]_j
  lsa::field::FlatMatrix<F> agg_shares_;  ///< row r = responder r's sum
};

}  // namespace lsa::protocol
