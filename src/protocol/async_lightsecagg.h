// Asynchronous LightSecAgg (paper §4.2, Appendix F.3).
//
// Buffered asynchronous FL (FedBuff-style): the server buffers K masked
// local updates — possibly computed against *different* global rounds — and
// aggregates when the buffer is full, downweighting stale updates with a
// quantized staleness function s_cg(tau) = c_g * Q_cg(s(tau)) applied inside
// the field.
//
// The key property that makes this work (and that SecAgg/SecAgg+ lack,
// Remark 1): masks are encoded with one shared MDS code, so encoded shares
// generated in different rounds can be combined with the same public integer
// weights, and the commutativity of coding and addition lets the server
// decode sum_i w_i * z_i^{(t_i)} one-shot — even though the z's were
// generated at different times.
//
// This class simulates all parties: per-user timestamped share stores, the
// server-side buffer, and the one-shot weighted recovery.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string_view>
#include <vector>

#include "coding/mask_codec.h"
#include "common/error.h"
#include "crypto/prg.h"
#include "field/field_vec.h"
#include "field/flat_matrix.h"
#include "field/parallel_vec.h"
#include "field/random_field.h"
#include "net/ledger.h"
#include "protocol/params.h"
#include "quant/staleness.h"

namespace lsa::protocol {

template <class F>
class AsyncLightSecAgg {
 public:
  using rep = typename F::rep;

  struct BufferedUpdate {
    std::size_t user = 0;
    std::uint64_t born_round = 0;  ///< t_i: round the user downloaded from
    std::vector<rep> masked;       ///< ~Delta = quantized update + z_i^{(t_i)}
  };

  struct AggregateOutput {
    /// sum_i w_i * Delta_i in the field (mask removed), w_i the integer
    /// staleness weights.
    std::vector<rep> weighted_sum;
    /// sum_i w_i — divide by this (and by the quantizer's c_l) to obtain the
    /// staleness-compensated average update.
    std::uint64_t weight_sum = 0;
  };

  AsyncLightSecAgg(Params params, std::uint64_t buffer_size,
                   lsa::quant::StalenessPolicy staleness,
                   std::uint64_t c_g, std::uint64_t master_seed,
                   lsa::net::Ledger* ledger = nullptr)
      : params_(params),
        buffer_size_(buffer_size),
        staleness_(staleness),
        c_g_(c_g),
        master_seed_(master_seed),
        ledger_(ledger) {
    params_.validate_and_resolve();
    lsa::require<lsa::ProtocolError>(buffer_size_ >= 1,
                                     "async: buffer size must be >= 1");
    codec_.emplace(params_.num_users, params_.target_survivors,
                   params_.privacy, params_.model_dim);
  }

  [[nodiscard]] std::string_view name() const { return "AsyncLightSecAgg"; }
  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] std::uint64_t buffer_size() const { return buffer_size_; }

  /// User-side, offline: generates z_i^{(round)}, encodes it into one flat
  /// arena (row j = [~z]_j, the share user j stores), and returns the mask
  /// for local use. Mirrors Appendix F.3.1 (timestamped share exchange);
  /// the simulation keeps one arena per (user, round) instead of N
  /// per-holder heap vectors.
  std::vector<rep> generate_and_share_mask(std::size_t user,
                                           std::uint64_t round) {
    lsa::require<lsa::ProtocolError>(user < params_.num_users,
                                     "async: user id out of range");
    const std::size_t d = params_.model_dim;
    const std::size_t seg = codec_->segment_len();
    auto seed = lsa::crypto::derive_subseed(
        lsa::crypto::seed_from_u64(master_seed_ ^
                                   (0xa57ull + user * 0x9e3779b97f4a7c15ull)),
        round);
    lsa::crypto::Prg prg(seed);
    auto mask = lsa::field::uniform_vector<F>(d, prg);
    lsa::field::FlatMatrix<F> arena(params_.num_users, seg);
    codec_->encode_into(std::span<const rep>(mask), prg, arena, 0, 1,
                        params_.exec.chunk_reps);
    share_arenas_[{user, round}] = std::move(arena);
    if (ledger_ != nullptr) {
      for (std::size_t j = 0; j < params_.num_users; ++j) {
        if (j != user) {
          ledger_->add_message(lsa::net::Phase::kOffline, user, j, seg, true);
        }
      }
    }
    if (ledger_ != nullptr) {
      ledger_->add_compute(
          lsa::net::Phase::kOffline, user, lsa::net::CompKind::kPrgExpand,
          d + static_cast<std::uint64_t>(params_.privacy) * seg, true);
      ledger_->add_compute(lsa::net::Phase::kOffline, user,
                           lsa::net::CompKind::kMaskEncode,
                           static_cast<std::uint64_t>(params_.num_users) *
                               params_.target_survivors * seg,
                           true);
    }
    return mask;
  }

  /// User-side: masks a quantized update with the round-stamped mask
  /// (the caller obtained `mask` from generate_and_share_mask for `round`).
  [[nodiscard]] std::vector<rep> mask_update(
      std::span<const rep> quantized_update,
      std::span<const rep> mask) const {
    return lsa::field::add<F>(quantized_update, mask);
  }

  /// Server-side: stores a masked update in the buffer. Returns true when
  /// the buffer reached K and aggregate() may be called.
  bool buffer_update(BufferedUpdate update) {
    lsa::require<lsa::ProtocolError>(
        update.masked.size() == params_.model_dim,
        "async: masked update has wrong dimension");
    if (ledger_ != nullptr) {
      ledger_->add_message(lsa::net::Phase::kUpload, update.user,
                           ledger_->server_id(), params_.model_dim, true);
    }
    buffer_.push_back(std::move(update));
    return buffer_.size() >= buffer_size_;
  }

  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

  /// Server-side: aggregates the buffered updates at global round `now`.
  /// `active[j]` marks users reachable for the recovery phase; at least U
  /// must be active. Consumes the buffer and garbage-collects the consumed
  /// shares from every user's store.
  [[nodiscard]] AggregateOutput aggregate(std::uint64_t now,
                                          const std::vector<bool>& active) {
    const std::size_t n = params_.num_users;
    const std::size_t u = params_.target_survivors;
    const std::size_t seg = codec_->segment_len();
    lsa::require<lsa::ProtocolError>(active.size() == n,
                                     "async: wrong active vector size");
    lsa::require<lsa::ProtocolError>(!buffer_.empty(),
                                     "async: nothing buffered");

    // Public integer staleness weights (eq. 34), broadcast with {t_i}.
    std::vector<std::uint64_t> weights(buffer_.size());
    std::uint64_t weight_sum = 0;
    for (std::size_t b = 0; b < buffer_.size(); ++b) {
      lsa::require<lsa::ProtocolError>(buffer_[b].born_round <= now,
                                       "async: update from the future");
      const std::uint64_t tau = now - buffer_[b].born_round;
      weights[b] =
          lsa::quant::quantized_staleness_weight(staleness_, tau, c_g_);
      weight_sum += weights[b];
    }
    lsa::require<lsa::ProtocolError>(
        weight_sum > 0, "async: all staleness weights rounded to zero");

    // Weighted sum of masked updates (server side, in the field) — one
    // fused K-row weighted column sum over the buffer.
    std::vector<rep> acc(params_.model_dim, F::zero);
    {
      std::vector<rep> coeffs(buffer_.size());
      std::vector<const rep*> rows(buffer_.size());
      for (std::size_t b = 0; b < buffer_.size(); ++b) {
        coeffs[b] = F::from_u64(weights[b]);
        rows[b] = buffer_[b].masked.data();
      }
      lsa::field::axpy_accumulate<F>(std::span<rep>(acc),
                                     std::span<const rep>(coeffs),
                                     std::span<const rep* const>(rows),
                                     params_.exec);
    }

    // Recovery: each active user j returns sum_b w_b * [~z]_j for the
    // buffered (user, round) pairs; server decodes from the first U.
    std::vector<std::size_t> responders;
    for (std::size_t j = 0; j < n && responders.size() < u; ++j) {
      if (active[j]) responders.push_back(j);
    }
    lsa::require<lsa::ProtocolError>(
        responders.size() == u,
        "async: fewer than U active users — unrecoverable aggregation");

    // Per responder j: sum_b w_b * [~z_{u_b}^{(t_b)}]_j — a fused weighted
    // column sum over row j of each buffered update's share arena.
    // Responders fan out over params.exec (disjoint output rows).
    std::vector<rep> coeffs(buffer_.size());
    std::vector<const lsa::field::FlatMatrix<F>*> arenas(buffer_.size());
    for (std::size_t b = 0; b < buffer_.size(); ++b) {
      coeffs[b] = F::from_u64(weights[b]);
      const auto it =
          share_arenas_.find({buffer_[b].user, buffer_[b].born_round});
      lsa::require<lsa::ProtocolError>(
          it != share_arenas_.end(),
          "async: user is missing a timestamped encoded mask share");
      arenas[b] = &it->second;
    }
    lsa::field::FlatMatrix<F> agg_shares(u, seg);
    params_.exec.run(u, [&](std::size_t r) {
      std::vector<const rep*> rows(buffer_.size());
      for (std::size_t b = 0; b < buffer_.size(); ++b) {
        rows[b] = arenas[b]->row_ptr(responders[r]);
      }
      lsa::field::axpy_accumulate_blocked<F>(
          agg_shares.row(r), std::span<const rep>(coeffs),
          std::span<const rep* const>(rows), params_.exec.chunk_reps);
    });
    if (ledger_ != nullptr) {
      for (std::size_t j : responders) {
        ledger_->add_compute(
            lsa::net::Phase::kRecovery, j, lsa::net::CompKind::kFieldAddVec,
            static_cast<std::uint64_t>(buffer_.size()) * seg, true);
        ledger_->add_message(lsa::net::Phase::kRecovery, j,
                             ledger_->server_id(), seg, true);
      }
    }

    auto agg_mask = codec_->decode_aggregate(responders, agg_shares,
                                             params_.exec, params_.decode);
    if (ledger_ != nullptr) {
      ledger_->add_compute(
          lsa::net::Phase::kRecovery, ledger_->server_id(),
          lsa::net::CompKind::kMaskDecode,
          static_cast<std::uint64_t>(u) * (u - params_.privacy) * seg, true);
    }
    lsa::field::sub_inplace<F>(std::span<rep>(acc),
                               std::span<const rep>(agg_mask));

    // Garbage-collect consumed share arenas.
    for (const auto& upd : buffer_) {
      share_arenas_.erase({upd.user, upd.born_round});
    }
    buffer_.clear();

    return AggregateOutput{std::move(acc), weight_sum};
  }

 private:
  Params params_;
  std::uint64_t buffer_size_;
  lsa::quant::StalenessPolicy staleness_;
  std::uint64_t c_g_;
  std::uint64_t master_seed_;
  lsa::net::Ledger* ledger_;
  std::optional<lsa::coding::MaskCodec<F>> codec_;
  /// share_arenas_[(user, round)].row(j) = [~z_user^{(round)}]_j held by
  /// user j — one flat allocation per timestamped mask, not N vectors.
  std::map<std::pair<std::size_t, std::uint64_t>, lsa::field::FlatMatrix<F>>
      share_arenas_;
  std::deque<BufferedUpdate> buffer_;
};

}  // namespace lsa::protocol
