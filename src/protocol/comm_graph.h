// Sparse communication graph for SecAgg+ (Bell et al., CCS 2020).
//
// SecAgg+ replaces SecAgg's complete graph with a k-regular graph of degree
// k = O(log N): users only agree on pairwise seeds with neighbors and only
// secret-share within their neighborhood. We use a seeded circulant
// construction (neighbors at ring offsets drawn once per graph), which is
// k-regular, symmetric, and connected — the properties the protocol relies
// on. Bell et al. sample a random k-regular graph; the circulant family is a
// standard explicit stand-in with the same degree/diameter behaviour.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace lsa::protocol {

class CommGraph {
 public:
  /// Builds a k-regular circulant graph on n vertices with randomly drawn
  /// ring offsets. k is rounded up to even and clamped to n-1.
  CommGraph(std::size_t n, std::size_t degree, std::uint64_t seed)
      : n_(n) {
    lsa::require<lsa::ProtocolError>(n >= 2, "comm graph: need >= 2 users");
    std::size_t k = std::min(degree, n - 1);
    if (k % 2 == 1 && k < n - 1) ++k;  // circulant needs even degree
    if (k >= n - 1) {
      // Complete graph.
      offsets_.clear();
      for (std::size_t o = 1; o <= (n - 1) / 2 + ((n - 1) % 2); ++o) {
        offsets_.push_back(o);
      }
      complete_ = true;
      degree_ = n - 1;
      return;
    }
    // Draw k/2 distinct offsets in [1, n/2).
    lsa::common::Xoshiro256ss rng(seed);
    std::vector<std::size_t> pool;
    for (std::size_t o = 1; o <= (n - 1) / 2; ++o) pool.push_back(o);
    for (std::size_t i = 0; i + 1 < pool.size(); ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.next_below(pool.size() - i));
      std::swap(pool[i], pool[j]);
    }
    offsets_.assign(pool.begin(),
                    pool.begin() + static_cast<std::ptrdiff_t>(
                                       std::min(pool.size(), k / 2)));
    std::sort(offsets_.begin(), offsets_.end());
    // Offset n/2 (when n even) would contribute only one neighbor; avoided by
    // the pool bound above, so degree is exactly 2 * |offsets|.
    degree_ = 2 * offsets_.size();
  }

  /// Recommended degree k(N) ~ 3 log2 N, the O(log N) regime of SecAgg+.
  [[nodiscard]] static std::size_t default_degree(std::size_t n) {
    const auto k = static_cast<std::size_t>(
        std::ceil(3.0 * std::log2(static_cast<double>(std::max<std::size_t>(n, 2)))));
    return std::max<std::size_t>(4, k);
  }

  [[nodiscard]] std::size_t num_vertices() const { return n_; }
  [[nodiscard]] std::size_t degree() const { return degree_; }
  [[nodiscard]] bool is_complete() const { return complete_; }

  /// Sorted neighbor list of vertex i.
  [[nodiscard]] std::vector<std::size_t> neighbors(std::size_t i) const {
    lsa::require<lsa::ProtocolError>(i < n_, "comm graph: vertex oob");
    std::vector<std::size_t> out;
    out.reserve(degree_);
    for (std::size_t o : offsets_) {
      out.push_back((i + o) % n_);
      out.push_back((i + n_ - o) % n_);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  [[nodiscard]] bool adjacent(std::size_t i, std::size_t j) const {
    if (i == j) return false;
    const std::size_t diff = i > j ? i - j : j - i;
    const std::size_t wrapped = std::min(diff, n_ - diff);
    return std::find(offsets_.begin(), offsets_.end(), wrapped) !=
           offsets_.end();
  }

 private:
  std::size_t n_;
  std::size_t degree_ = 0;
  bool complete_ = false;
  std::vector<std::size_t> offsets_;
};

}  // namespace lsa::protocol
