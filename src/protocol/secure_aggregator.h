// Common interface for synchronous secure-aggregation protocols.
//
// A protocol executes one *round*: every user holds a field-embedded model
// vector (the FL layer quantizes real models first — see fl/secure_trainer.h),
// some users drop, and the server must end up with exactly
// sum_{i in U1} inputs[i] where U1 is the surviving set — learning nothing
// else about individual inputs.
//
// Dropout semantics follow the paper's worst case (§7.1): the dropped users
// upload their masked models and *then* go silent, so the server pays the
// full recovery cost for them while excluding their models from the sum.
#pragma once

#include <string_view>
#include <vector>

#include "protocol/params.h"

namespace lsa::protocol {

template <class F>
class SecureAggregator {
 public:
  using rep = typename F::rep;

  virtual ~SecureAggregator() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual const Params& params() const = 0;

  /// Executes one full secure-aggregation round.
  ///   inputs:  inputs[i] is user i's length-d field vector.
  ///   dropped: dropped[i] == true -> user i drops after the upload phase.
  /// Returns sum_{i: !dropped[i]} inputs[i].
  /// Throws ProtocolError when the dropout pattern makes recovery impossible
  /// (more than D drops, or — for SecAgg+ — an unlucky neighborhood).
  [[nodiscard]] virtual std::vector<rep> run_round(
      const std::vector<std::vector<rep>>& inputs,
      const std::vector<bool>& dropped) = 0;
};

}  // namespace lsa::protocol
