// SecAgg+ (Bell et al., CCS 2020) — baseline protocol (paper §3).
//
// Same pairwise-masking structure as SecAgg, but over a sparse k-regular
// graph with k = O(log N): each user agrees on seeds and secret-shares its
// sk / b only with its k neighbors. Server recovery then costs
// O(dN + dDk) = O(dN log N) instead of O(dN^2).
//
// Unlike SecAgg, the dropout/privacy guarantee is probabilistic (paper
// Remark 4): an adversarial dropout pattern can leave a dropped user with
// fewer than threshold+1 surviving neighbors, which this implementation
// surfaces as a ProtocolError.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "crypto/key_agreement.h"
#include "crypto/prg.h"
#include "crypto/secret_pack.h"
#include "crypto/shamir.h"
#include "field/field_vec.h"
#include "field/flat_matrix.h"
#include "field/parallel_vec.h"
#include "field/random_field.h"
#include "net/ledger.h"
#include "protocol/comm_graph.h"
#include "protocol/recovery_batch.h"
#include "protocol/secure_aggregator.h"

namespace lsa::protocol {

template <class F>
class SecAggPlus final : public SecureAggregator<F> {
 public:
  using rep = typename F::rep;

  /// degree = 0 picks the default O(log N) degree; share_threshold = 0 picks
  /// floor(degree / 3) (privacy within each neighborhood, recovery whp for
  /// dropout rates up to ~1/2).
  SecAggPlus(Params params, std::uint64_t master_seed,
             lsa::net::Ledger* ledger = nullptr, std::size_t degree = 0,
             std::size_t share_threshold = 0)
      : params_(params),
        master_seed_(master_seed),
        ledger_(ledger),
        graph_(params.num_users,
               degree == 0 ? CommGraph::default_degree(params.num_users)
                           : degree,
               master_seed ^ 0x6772617068ull) {
    params_.validate_and_resolve();
    threshold_ = share_threshold == 0 ? std::max<std::size_t>(1, graph_.degree() / 3)
                                      : share_threshold;
    lsa::require<lsa::ProtocolError>(threshold_ < graph_.degree(),
                                     "secagg+: threshold must be < degree");
  }

  [[nodiscard]] std::string_view name() const override { return "SecAgg+"; }
  [[nodiscard]] const Params& params() const override { return params_; }
  [[nodiscard]] const CommGraph& graph() const { return graph_; }
  [[nodiscard]] std::size_t share_threshold() const { return threshold_; }

  [[nodiscard]] std::vector<rep> run_round(
      const std::vector<std::vector<rep>>& inputs,
      const std::vector<bool>& dropped) override {
    const lsa::field::simd::ScopedSimdPolicy simd_guard(params_.simd);
    const std::size_t n = params_.num_users;
    const std::size_t d = params_.model_dim;
    lsa::require<lsa::ProtocolError>(inputs.size() == n,
                                     "secagg+: wrong number of inputs");
    lsa::require<lsa::ProtocolError>(dropped.size() == n,
                                     "secagg+: wrong dropout vector size");

    std::vector<std::size_t> survivors;
    for (std::size_t i = 0; i < n; ++i) {
      if (!dropped[i]) survivors.push_back(i);
    }

    const std::uint64_t round = round_counter_++;

    // ---- Offline: keys, neighbor agreements, neighborhood Shamir. ----
    std::vector<lsa::crypto::KeyPair> keys(n);
    std::vector<lsa::crypto::Seed> b_seed(n);
    std::vector<std::vector<std::size_t>> nbrs(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto base = lsa::crypto::seed_from_u64(
          master_seed_ ^ (0xa66u + i * 0x9e3779b97f4a7c15ull));
      keys[i] = lsa::crypto::generate_keypair(
          lsa::crypto::derive_subseed(base, 2 * round));
      b_seed[i] = lsa::crypto::derive_subseed(base, 2 * round + 1);
      nbrs[i] = graph_.neighbors(i);
    }
    const std::uint64_t sk_share = elems_for_bytes(8);
    const std::uint64_t b_share = elems_for_bytes(32);
    if (ledger_ != nullptr) {
      const std::uint64_t pk_elems = elems_for_bytes(8);
      for (std::size_t i = 0; i < n; ++i) {
        ledger_->add_message(lsa::net::Phase::kOffline, i,
                             ledger_->server_id(), pk_elems, false);
        ledger_->add_message(lsa::net::Phase::kOffline, ledger_->server_id(),
                             i, pk_elems * nbrs[i].size(), false);
        ledger_->add_compute(lsa::net::Phase::kOffline, i,
                             lsa::net::CompKind::kKeyAgree, nbrs[i].size(),
                             false);
        for (std::size_t j : nbrs[i]) {
          ledger_->add_message(lsa::net::Phase::kOffline, i, j,
                               sk_share + b_share, false);
        }
        ledger_->add_compute(
            lsa::net::Phase::kOffline, i, lsa::net::CompKind::kShamirShare,
            nbrs[i].size() * (sk_share + b_share), false);
      }
    }

    // Shamir shares within each neighborhood, flattened into two arenas:
    // row i*max_deg + pos = the share held by neighbor nbrs[i][pos] (with
    // 1-based evaluation index pos+1, as in the legacy nested layout).
    const std::size_t sk_len = static_cast<std::size_t>(sk_share);
    const std::size_t b_len = static_cast<std::size_t>(b_share);
    std::size_t max_deg = 1;
    for (std::size_t i = 0; i < n; ++i) {
      max_deg = std::max(max_deg, nbrs[i].size());
    }
    sk_shares_.reset_for_overwrite(n * max_deg, sk_len);
    b_shares_.reset_for_overwrite(n * max_deg, b_len);
    {
      lsa::common::Xoshiro256ss share_rng(master_seed_ ^ (round * 104729 + 7));
      for (std::size_t i = 0; i < n; ++i) {
        lsa::crypto::ShamirScheme<F> shamir(threshold_, nbrs[i].size());
        std::array<std::uint8_t, 8> sk_bytes{};
        std::memcpy(sk_bytes.data(), &keys[i].secret, 8);
        shamir.share_bytes_into(sk_bytes, share_rng, sk_shares_, i * max_deg,
                                1);
        shamir.share_bytes_into(b_seed[i], share_rng, b_shares_, i * max_deg,
                                1);
      }
    }

    // ---- Offline: mask generation over the sparse graph. ----
    // Masks live in one N x d arena; users fan out over params.exec.
    const auto& pol = params_.exec;
    masks_.reset_for_overwrite(n, d);
    pol.run(n, [&](std::size_t i) {
      expand_seed_into(b_seed[i], masks_.row(i));
      std::vector<rep> z(d);
      for (std::size_t j : nbrs[i]) {
        const auto pair_seed = pairwise_round_seed(keys, i, j, round);
        expand_seed_into(pair_seed, std::span<rep>(z));
        if (i < j) {
          lsa::field::add_inplace<F>(masks_.row(i), std::span<const rep>(z));
        } else {
          lsa::field::sub_inplace<F>(masks_.row(i), std::span<const rep>(z));
        }
      }
    });
    if (ledger_ != nullptr) {
      for (std::size_t i = 0; i < n; ++i) {
        ledger_->add_compute(
            lsa::net::Phase::kOffline, i, lsa::net::CompKind::kPrgExpand,
            static_cast<std::uint64_t>(nbrs[i].size() + 1) * d, true);
        ledger_->add_compute(
            lsa::net::Phase::kOffline, i, lsa::net::CompKind::kFieldAddVec,
            static_cast<std::uint64_t>(nbrs[i].size() + 1) * d, true);
      }
    }

    // ---- Upload. ----
    // One fused 2|U1|-row column sum (associative, bit-identical).
    std::vector<rep> sum_masked(d, F::zero);
    {
      std::vector<const rep*> acc_rows;
      acc_rows.reserve(2 * survivors.size());
      for (std::size_t i : survivors) {
        lsa::require<lsa::ProtocolError>(inputs[i].size() == d,
                                         "secagg+: bad input length");
        acc_rows.push_back(inputs[i].data());
        acc_rows.push_back(masks_.row_ptr(i));
      }
      lsa::field::add_accumulate<F>(std::span<rep>(sum_masked),
                                    std::span<const rep* const>(acc_rows),
                                    pol);
    }
    if (ledger_ != nullptr) {
      for (std::size_t i = 0; i < n; ++i) {
        ledger_->add_message(lsa::net::Phase::kUpload, i,
                             ledger_->server_id(), d, true);
        ledger_->add_compute(lsa::net::Phase::kUpload, i,
                             lsa::net::CompKind::kFieldAddVec, d, true);
      }
    }

    // ---- Recovery. ----
    if (ledger_ != nullptr) {
      for (std::size_t j : survivors) {
        // Survivor j ships one share per (surviving neighbor's b) and per
        // (dropped neighbor's sk).
        std::uint64_t elems = 0;
        for (std::size_t i : nbrs[j]) {
          elems += dropped[i] ? sk_share : b_share;
        }
        ledger_->add_message(lsa::net::Phase::kRecovery, j,
                             ledger_->server_id(), elems, false);
      }
    }

    // Seed reconstruction stays serial (cheap); the d-linear PRG
    // re-expansions are collected as jobs and batched through the pool
    // (recovery_batch.h) — bit-identical to the legacy serial loop.
    std::vector<detail::SeedExpansion> jobs;
    // Neighborhoods sharing a surviving-position pattern share one
    // reconstruction plan for the whole round.
    ReconPlanCache recon_plans;

    // Remove private masks of survivors (reconstructed from neighbors).
    for (std::size_t i : survivors) {
      lsa::crypto::ShamirScheme<F> shamir(threshold_, nbrs[i].size());
      auto b_rec = reconstruct_bytes_from_neighbors(
          shamir, recon_plans, b_shares_, i * max_deg, b_len, nbrs[i],
          dropped, 32,
          "secagg+: cannot recover a survivor's b seed");
      lsa::crypto::Seed s{};
      std::copy(b_rec.begin(), b_rec.end(), s.begin());
      jobs.push_back({s, /*negate=*/true});
      if (ledger_ != nullptr) {
        ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                             lsa::net::CompKind::kShamirRecon,
                             (threshold_ + 1) * b_share, false);
        ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                             lsa::net::CompKind::kPrgExpand, d, true);
        ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                             lsa::net::CompKind::kFieldAddVec, d, true);
      }
    }

    // Cancel residual pairwise masks of dropped users (only their surviving
    // neighbors contribute residuals).
    for (std::size_t dct = 0; dct < n; ++dct) {
      if (!dropped[dct]) continue;
      lsa::crypto::ShamirScheme<F> shamir(threshold_, nbrs[dct].size());
      auto sk_bytes = reconstruct_bytes_from_neighbors(
          shamir, recon_plans, sk_shares_, dct * max_deg, sk_len, nbrs[dct],
          dropped, 8,
          "secagg+: cannot recover a dropped user's key — "
          "too many neighbors dropped");
      std::uint64_t sk_rec = 0;
      std::memcpy(&sk_rec, sk_bytes.data(), 8);
      lsa::require<lsa::ProtocolError>(sk_rec == keys[dct].secret,
                                       "secagg+: sk reconstruction mismatch");
      std::size_t n_resid = 0;
      for (std::size_t i : nbrs[dct]) {
        if (dropped[i]) continue;
        jobs.push_back({pairwise_round_seed(keys, dct, i, round),
                        /*negate=*/i < dct});
        ++n_resid;
      }
      if (ledger_ != nullptr) {
        ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                             lsa::net::CompKind::kShamirRecon,
                             (threshold_ + 1) * sk_share, false);
        ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                             lsa::net::CompKind::kKeyAgree, n_resid, false);
        ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                             lsa::net::CompKind::kPrgExpand,
                             static_cast<std::uint64_t>(n_resid) * d, true);
        ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                             lsa::net::CompKind::kFieldAddVec,
                             static_cast<std::uint64_t>(n_resid) * d, true);
      }
    }

    detail::apply_seed_expansions<F>(jobs, std::span<rep>(sum_masked),
                                     recovery_scratch_, pol);

    return sum_masked;
  }

 private:
  [[nodiscard]] static std::uint64_t elems_for_bytes(std::size_t n_bytes) {
    return lsa::crypto::packed_size<F>(n_bytes);
  }

  [[nodiscard]] static lsa::crypto::Seed pairwise_round_seed(
      const std::vector<lsa::crypto::KeyPair>& keys, std::size_t i,
      std::size_t j, std::uint64_t round) {
    const auto base =
        lsa::crypto::agreed_seed(keys[i].secret, keys[j].public_key);
    return lsa::crypto::derive_subseed(base, round);
  }

  static void expand_seed_into(const lsa::crypto::Seed& seed,
                               std::span<rep> out) {
    lsa::crypto::Prg prg(seed);
    lsa::field::fill_uniform<F>(out, prg);
  }

  /// Per-round cache of reconstruction plans keyed on the surviving
  /// neighbor-position pattern: neighborhoods with the same dropout shape
  /// share one Lagrange-weight computation (plan-based recovery).
  using ReconPlanCache =
      std::map<std::vector<std::uint32_t>,
               typename lsa::crypto::ShamirScheme<F>::ReconstructionPlan>;

  /// Collects threshold+1 share rows (arena rows base+pos, evaluation index
  /// pos+1) held by surviving neighbors and reconstructs through the
  /// round's plan cache; throws ProtocolError when too few survive.
  [[nodiscard]] std::vector<std::uint8_t> reconstruct_bytes_from_neighbors(
      const lsa::crypto::ShamirScheme<F>& shamir, ReconPlanCache& plans,
      const lsa::field::FlatMatrix<F>& arena, std::size_t base,
      std::size_t packed_len, const std::vector<std::size_t>& neighbor_ids,
      const std::vector<bool>& dropped, std::size_t n_bytes,
      const char* failure_msg) const {
    std::vector<std::uint32_t> indices;
    std::vector<const rep*> rows;
    for (std::size_t pos = 0; pos < neighbor_ids.size(); ++pos) {
      if (dropped[neighbor_ids[pos]]) continue;
      indices.push_back(static_cast<std::uint32_t>(pos + 1));
      rows.push_back(arena.row_ptr(base + pos));
      if (indices.size() == threshold_ + 1) break;
    }
    lsa::require<lsa::ProtocolError>(indices.size() >= threshold_ + 1,
                                     failure_msg);
    auto it = plans.find(indices);
    if (it == plans.end()) {
      it = plans.emplace(indices, shamir.make_reconstruction_plan(indices))
               .first;
    }
    return shamir.reconstruct_bytes_rows(
        it->second, std::span<const rep* const>(rows), packed_len, n_bytes);
  }

  Params params_;
  std::uint64_t master_seed_;
  lsa::net::Ledger* ledger_;
  CommGraph graph_;
  std::size_t threshold_ = 0;
  std::uint64_t round_counter_ = 0;
  // Round arenas, reused across rounds (reset keeps capacity).
  lsa::field::FlatMatrix<F> masks_;      ///< row i = mask_i
  lsa::field::FlatMatrix<F> sk_shares_;  ///< row i*max_deg + pos
  lsa::field::FlatMatrix<F> b_shares_;   ///< row i*max_deg + pos
  lsa::field::FlatMatrix<F> recovery_scratch_;  ///< batched PRG expansions
};

}  // namespace lsa::protocol
