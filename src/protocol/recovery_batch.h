// Batched PRG re-expansion for the SecAgg-family recovery phase.
//
// SecAgg/SecAgg+ recovery re-expands one PRG stream of length d per
// surviving user (its private mask) and one per (dropped user, surviving
// neighbor) pair (residual pairwise masks) — the d-linear term that
// dominates the baseline protocols' server time at scale (paper Table 4).
// This helper fans those expansions out over a sys::ExecPolicy: seeds are
// expanded a batch at a time into rows of a reused flat arena (one lane
// per row), then folded into the accumulator with the exact field kernels.
//
// Parity: modular +/- is exact and commutative, so ANY batching/grouping
// yields bit-identical results to the legacy expand-one-apply-one serial
// loop. tests/parallel_codec_test.cpp pins serial == parallel for whole
// SecAgg/SecAgg+ rounds.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "crypto/prg.h"
#include "field/field_vec.h"
#include "field/flat_matrix.h"
#include "field/random_field.h"
#include "sys/exec_policy.h"

namespace lsa::protocol::detail {

struct SeedExpansion {
  lsa::crypto::Seed seed;
  /// true: the expanded stream is subtracted from the accumulator.
  bool negate = false;
};

/// acc (+|-)= PRG(job.seed) for every job, batched over pol.pool. The
/// scratch arena is caller-owned and reused across rounds (capacity
/// sticks); serial policies degrade to one row — exactly the legacy
/// z_scratch footprint.
template <class F>
void apply_seed_expansions(std::span<const SeedExpansion> jobs,
                           std::span<typename F::rep> acc,
                           lsa::field::FlatMatrix<F>& scratch,
                           const lsa::sys::ExecPolicy& pol) {
  using rep = typename F::rep;
  const std::size_t d = acc.size();
  const std::size_t batch =
      pol.parallel()
          ? std::min(jobs.size(), std::max<std::size_t>(2 * pol.lanes(), 4))
          : std::size_t{1};
  for (std::size_t base = 0; base < jobs.size(); base += batch) {
    const std::size_t count = std::min(batch, jobs.size() - base);
    scratch.reset_for_overwrite(count, d);
    pol.run(count, [&](std::size_t r) {
      lsa::crypto::Prg prg(jobs[base + r].seed);
      lsa::field::fill_uniform<F>(scratch.row(r), prg);
    });
    for (std::size_t r = 0; r < count; ++r) {
      if (jobs[base + r].negate) {
        lsa::field::sub_inplace<F>(acc,
                                   std::span<const rep>(scratch.row(r)));
      } else {
        lsa::field::add_inplace<F>(acc,
                                   std::span<const rep>(scratch.row(r)));
      }
    }
  }
}

}  // namespace lsa::protocol::detail
