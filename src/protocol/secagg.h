// SecAgg (Bonawitz et al., CCS 2017) — baseline protocol (paper §3).
//
// Pairwise random masking over the complete user graph:
//   ~x_i = x_i + PRG(b_i) + sum_{j: i<j} PRG(a_ij) - sum_{j: i>j} PRG(a_ji)
// with a_ij agreed via Diffie-Hellman and b_i a private seed. Both b_i and
// the DH secret sk_i are Shamir-shared (threshold T) so the server can
// reconstruct, for every surviving user its private mask PRG(b_i), and for
// every dropped user all of its pairwise masks — the per-dropout cost that
// LightSecAgg eliminates.
//
// This implementation is honest-but-curious and functional: real DH, real
// ChaCha20 masks, real Shamir shares. Message/compute volumes are logged to
// the net::Ledger for the timing simulation.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "crypto/key_agreement.h"
#include "crypto/prg.h"
#include "crypto/secret_pack.h"
#include "crypto/shamir.h"
#include "field/field_vec.h"
#include "field/flat_matrix.h"
#include "field/parallel_vec.h"
#include "field/random_field.h"
#include "net/ledger.h"
#include "protocol/recovery_batch.h"
#include "protocol/secure_aggregator.h"

namespace lsa::protocol {

template <class F>
class SecAgg final : public SecureAggregator<F> {
 public:
  using rep = typename F::rep;

  SecAgg(Params params, std::uint64_t master_seed,
         lsa::net::Ledger* ledger = nullptr)
      : params_(params), master_seed_(master_seed), ledger_(ledger) {
    params_.validate_and_resolve();
  }

  [[nodiscard]] std::string_view name() const override { return "SecAgg"; }
  [[nodiscard]] const Params& params() const override { return params_; }

  [[nodiscard]] std::vector<rep> run_round(
      const std::vector<std::vector<rep>>& inputs,
      const std::vector<bool>& dropped) override {
    const lsa::field::simd::ScopedSimdPolicy simd_guard(params_.simd);
    const std::size_t n = params_.num_users;
    const std::size_t d = params_.model_dim;
    const std::size_t t = params_.privacy;
    lsa::require<lsa::ProtocolError>(inputs.size() == n,
                                     "secagg: wrong number of inputs");
    lsa::require<lsa::ProtocolError>(dropped.size() == n,
                                     "secagg: wrong dropout vector size");

    std::vector<std::size_t> survivors;
    for (std::size_t i = 0; i < n; ++i) {
      if (!dropped[i]) survivors.push_back(i);
    }
    lsa::require<lsa::ProtocolError>(
        survivors.size() > t,
        "secagg: fewer than T+1 survivors — shares unrecoverable");

    const std::uint64_t round = round_counter_++;

    // ---- Offline: key advertisement + agreement + Shamir sharing. ----
    std::vector<lsa::crypto::KeyPair> keys(n);
    std::vector<lsa::crypto::Seed> b_seed(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto base = lsa::crypto::seed_from_u64(
          master_seed_ ^ (0x5ecu + i * 0x9e3779b97f4a7c15ull));
      keys[i] = lsa::crypto::generate_keypair(
          lsa::crypto::derive_subseed(base, 2 * round));
      b_seed[i] = lsa::crypto::derive_subseed(base, 2 * round + 1);
    }
    if (ledger_ != nullptr) {
      // pk advertisement: user -> server (1 group element ~ pk_elems),
      // then server broadcasts all N pks to each user.
      const std::uint64_t pk_elems = elems_for_bytes(8);
      for (std::size_t i = 0; i < n; ++i) {
        ledger_->add_message(lsa::net::Phase::kOffline, i,
                             ledger_->server_id(), pk_elems, false);
        ledger_->add_message(lsa::net::Phase::kOffline, ledger_->server_id(),
                             i, pk_elems * n, false);
        ledger_->add_compute(lsa::net::Phase::kOffline, i,
                             lsa::net::CompKind::kKeyAgree, n - 1, false);
      }
    }

    // Shamir-share every user's sk (8 bytes) and b seed (32 bytes) into two
    // flat arenas: row i*N + j = user j's share of user i's secret. One
    // allocation per arena instead of N^2 per-share heap vectors; the draw
    // order of the shared RNG is identical to the legacy nested path.
    const std::size_t sk_len = elems_for_bytes(8);
    const std::size_t b_len = elems_for_bytes(32);
    lsa::crypto::ShamirScheme<F> shamir(t, n);
    sk_shares_.reset_for_overwrite(n * n, sk_len);
    b_shares_.reset_for_overwrite(n * n, b_len);
    {
      lsa::common::Xoshiro256ss share_rng(master_seed_ ^ (round * 7919 + 13));
      for (std::size_t i = 0; i < n; ++i) {
        std::array<std::uint8_t, 8> sk_bytes{};
        std::memcpy(sk_bytes.data(), &keys[i].secret, 8);
        shamir.share_bytes_into(sk_bytes, share_rng, sk_shares_, i * n, 1);
        shamir.share_bytes_into(b_seed[i], share_rng, b_shares_, i * n, 1);
        if (ledger_ != nullptr) {
          const std::uint64_t sk_share = elems_for_bytes(8);
          const std::uint64_t b_share = elems_for_bytes(32);
          for (std::size_t j = 0; j < n; ++j) {
            if (j == i) continue;
            ledger_->add_message(lsa::net::Phase::kOffline, i, j,
                                 sk_share + b_share, false);
          }
          ledger_->add_compute(lsa::net::Phase::kOffline, i,
                               lsa::net::CompKind::kShamirShare,
                               n * (sk_share + b_share), false);
        }
      }
    }

    // ---- Offline: mask generation (PRG expansion, overlappable). ----
    // mask_i = PRG(b_i) + sum_{j>i} PRG(a_ij) - sum_{j<i} PRG(a_ji)
    // Masks live in one N x d arena; users fan out over params.exec (each
    // task only writes its own row).
    const auto& pol = params_.exec;
    masks_.reset_for_overwrite(n, d);
    pol.run(n, [&](std::size_t i) {
      expand_seed_into(b_seed[i], masks_.row(i));
      std::vector<rep> z(d);
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const auto pair_seed = pairwise_round_seed(keys, i, j, round);
        expand_seed_into(pair_seed, std::span<rep>(z));
        if (i < j) {
          lsa::field::add_inplace<F>(masks_.row(i), std::span<const rep>(z));
        } else {
          lsa::field::sub_inplace<F>(masks_.row(i), std::span<const rep>(z));
        }
      }
    });
    if (ledger_ != nullptr) {
      for (std::size_t i = 0; i < n; ++i) {
        ledger_->add_compute(lsa::net::Phase::kOffline, i,
                             lsa::net::CompKind::kPrgExpand,
                             static_cast<std::uint64_t>(n) * d, true);
        ledger_->add_compute(lsa::net::Phase::kOffline, i,
                             lsa::net::CompKind::kFieldAddVec,
                             static_cast<std::uint64_t>(n) * d, true);
      }
    }

    // ---- Upload: masked models (all users, worst-case dropouts). ----
    // One fused 2|U1|-row column sum (associative, bit-identical).
    std::vector<rep> sum_masked(d, F::zero);
    {
      std::vector<const rep*> rows;
      rows.reserve(2 * survivors.size());
      for (std::size_t i : survivors) {
        lsa::require<lsa::ProtocolError>(inputs[i].size() == d,
                                         "secagg: bad input length");
        rows.push_back(inputs[i].data());
        rows.push_back(masks_.row_ptr(i));
      }
      lsa::field::add_accumulate<F>(std::span<rep>(sum_masked),
                                    std::span<const rep* const>(rows), pol);
    }
    if (ledger_ != nullptr) {
      for (std::size_t i = 0; i < n; ++i) {
        ledger_->add_message(lsa::net::Phase::kUpload, i,
                             ledger_->server_id(), d, true);
        ledger_->add_compute(lsa::net::Phase::kUpload, i,
                             lsa::net::CompKind::kFieldAddVec, d, true);
      }
    }

    // ---- Recovery: share collection + mask reconstruction. ----
    // Each survivor ships its stored shares: one b-share per survivor, one
    // sk-share per dropped user. The server uses the first T+1 of each.
    if (ledger_ != nullptr) {
      const std::uint64_t sk_share = elems_for_bytes(8);
      const std::uint64_t b_share = elems_for_bytes(32);
      const std::uint64_t n_drop = n - survivors.size();
      for (std::size_t j : survivors) {
        ledger_->add_message(
            lsa::net::Phase::kRecovery, j, ledger_->server_id(),
            static_cast<std::uint64_t>(survivors.size()) * b_share +
                n_drop * sk_share,
            false);
      }
    }

    // Seed reconstruction stays serial (cheap, O(T) field ops per secret);
    // the d-linear PRG re-expansions are collected as jobs and batched
    // through the pool (recovery_batch.h) — bit-identical to the legacy
    // expand-one-apply-one loop because modular +/- is exact.
    std::vector<detail::SeedExpansion> jobs;
    jobs.reserve(survivors.size() * (1 + (n - survivors.size())));

    // One reconstruction plan per round: every secret reconstructs against
    // the same first-T+1 survivor set, so the Lagrange weights (and their
    // Shoup table) are computed once here instead of once per secret.
    std::vector<std::uint32_t> survivor_indices;
    for (std::size_t j : survivors) {
      survivor_indices.push_back(static_cast<std::uint32_t>(j + 1));
      if (survivor_indices.size() == t + 1) break;
    }
    const auto recon_plan =
        shamir.make_reconstruction_plan(survivor_indices);

    // Remove private masks PRG(b_i) of survivors.
    for (std::size_t i : survivors) {
      const auto b_rec =
          reconstruct_seed(shamir, recon_plan, b_shares_, i, survivors,
                           b_len);
      jobs.push_back({b_rec, /*negate=*/true});
      if (ledger_ != nullptr) {
        ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                             lsa::net::CompKind::kShamirRecon,
                             (t + 1) * elems_for_bytes(32), false);
        ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                             lsa::net::CompKind::kPrgExpand, d, true);
        ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                             lsa::net::CompKind::kFieldAddVec, d, true);
      }
    }

    // Cancel the residual pairwise masks of every dropped user.
    for (std::size_t dct = 0; dct < n; ++dct) {
      if (!dropped[dct]) continue;
      const std::uint64_t sk_rec = reconstruct_sk(
          shamir, recon_plan, sk_shares_, dct, survivors, sk_len);
      lsa::require<lsa::ProtocolError>(sk_rec == keys[dct].secret,
                                       "secagg: sk reconstruction mismatch");
      for (std::size_t i : survivors) {
        // Survivor i's upload contains +PRG(a_{i,dct}) when i < dct and
        // -PRG(a_{dct,i}) when i > dct; subtract/add accordingly.
        jobs.push_back({pairwise_round_seed(keys, dct, i, round),
                        /*negate=*/i < dct});
      }
      if (ledger_ != nullptr) {
        ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                             lsa::net::CompKind::kShamirRecon,
                             (t + 1) * elems_for_bytes(8), false);
        ledger_->add_compute(lsa::net::Phase::kRecovery, ledger_->server_id(),
                             lsa::net::CompKind::kKeyAgree, survivors.size(),
                             false);
        ledger_->add_compute(
            lsa::net::Phase::kRecovery, ledger_->server_id(),
            lsa::net::CompKind::kPrgExpand,
            static_cast<std::uint64_t>(survivors.size()) * d, true);
        ledger_->add_compute(
            lsa::net::Phase::kRecovery, ledger_->server_id(),
            lsa::net::CompKind::kFieldAddVec,
            static_cast<std::uint64_t>(survivors.size()) * d, true);
      }
    }
    detail::apply_seed_expansions<F>(jobs, std::span<rep>(sum_masked),
                                     recovery_scratch_, pol);

    return sum_masked;
  }

 private:
  [[nodiscard]] static std::uint64_t elems_for_bytes(std::size_t n_bytes) {
    return lsa::crypto::packed_size<F>(n_bytes);
  }

  /// Symmetric per-round pairwise seed for the unordered pair {i, j}.
  [[nodiscard]] static lsa::crypto::Seed pairwise_round_seed(
      const std::vector<lsa::crypto::KeyPair>& keys, std::size_t i,
      std::size_t j, std::uint64_t round) {
    const auto base =
        lsa::crypto::agreed_seed(keys[i].secret, keys[j].public_key);
    return lsa::crypto::derive_subseed(base, round);
  }

  static void expand_seed_into(const lsa::crypto::Seed& seed,
                               std::span<rep> out) {
    lsa::crypto::Prg prg(seed);
    lsa::field::fill_uniform<F>(out, prg);
  }

  /// First T+1 surviving share rows of secret `owner` from a flat arena
  /// (row owner*N + j = user j's share), as (1-based indices, row ptrs).
  void gather_survivor_rows(const lsa::field::FlatMatrix<F>& arena,
                            std::size_t owner,
                            const std::vector<std::size_t>& survivors,
                            std::vector<std::uint32_t>& indices,
                            std::vector<const rep*>& rows) const {
    const std::size_t n = params_.num_users;
    const std::size_t t = params_.privacy;
    indices.clear();
    rows.clear();
    for (std::size_t j : survivors) {
      indices.push_back(static_cast<std::uint32_t>(j + 1));
      rows.push_back(arena.row_ptr(owner * n + j));
      if (indices.size() == t + 1) break;
    }
  }

  /// Reconstructs a 32-byte seed from the first T+1 survivors' shares,
  /// through the round's cached reconstruction plan (the survivor set is
  /// the same for every secret of the round).
  [[nodiscard]] lsa::crypto::Seed reconstruct_seed(
      const lsa::crypto::ShamirScheme<F>& shamir,
      const typename lsa::crypto::ShamirScheme<F>::ReconstructionPlan& plan,
      const lsa::field::FlatMatrix<F>& arena, std::size_t owner,
      const std::vector<std::size_t>& survivors, std::size_t b_len) const {
    std::vector<std::uint32_t> indices;
    std::vector<const rep*> rows;
    gather_survivor_rows(arena, owner, survivors, indices, rows);
    const auto bytes = shamir.reconstruct_bytes_rows(
        plan, std::span<const rep* const>(rows), b_len, 32);
    lsa::crypto::Seed s{};
    std::copy(bytes.begin(), bytes.end(), s.begin());
    return s;
  }

  [[nodiscard]] std::uint64_t reconstruct_sk(
      const lsa::crypto::ShamirScheme<F>& shamir,
      const typename lsa::crypto::ShamirScheme<F>::ReconstructionPlan& plan,
      const lsa::field::FlatMatrix<F>& arena, std::size_t owner,
      const std::vector<std::size_t>& survivors, std::size_t sk_len) const {
    std::vector<std::uint32_t> indices;
    std::vector<const rep*> rows;
    gather_survivor_rows(arena, owner, survivors, indices, rows);
    const auto bytes = shamir.reconstruct_bytes_rows(
        plan, std::span<const rep* const>(rows), sk_len, 8);
    std::uint64_t sk = 0;
    std::memcpy(&sk, bytes.data(), 8);
    return sk;
  }

  Params params_;
  std::uint64_t master_seed_;
  lsa::net::Ledger* ledger_;
  std::uint64_t round_counter_ = 0;
  // Round arenas, reused across rounds (reset keeps capacity).
  lsa::field::FlatMatrix<F> masks_;      ///< row i = mask_i
  lsa::field::FlatMatrix<F> sk_shares_;  ///< row i*N + j = [sk_i]_j
  lsa::field::FlatMatrix<F> b_shares_;   ///< row i*N + j = [b_i]_j
  lsa::field::FlatMatrix<F> recovery_scratch_;  ///< batched PRG expansions
};

}  // namespace lsa::protocol
