// Buffered asynchronous FL — FedBuff (Nguyen et al. 2021) and its secure
// counterpart, asynchronous LightSecAgg (paper §4.2, App. F).
//
// Simulation model (App. F.5): N users; at every server round K users arrive
// with updates computed against a *stale* global model x(t - tau),
// tau ~ Uniform{0..tau_max}. The server buffers the K updates and applies
//   x(t+1) = x(t) - eta_g / (sum_i s(tau_i)) * sum_i s(tau_i) * Delta_i
// with Delta_i = x(t_i) - x_i^(E) (eq. 24) and staleness weighting s
// (Constant or Poly(alpha)).
//
// In secure mode the updates are quantized (c_l), masked with timestamped
// LightSecAgg masks, and the server aggregates with the *quantized* integer
// staleness weights s_cg (eq. 34) — never seeing an individual update.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "coding/decode_strategy.h"
#include "fl/dataset.h"
#include "fl/fedavg.h"  // RoundRecord
#include "fl/model.h"
#include "fl/sgd.h"
#include "protocol/async_lightsecagg.h"
#include "quant/staleness.h"
#include "sys/exec_policy.h"

namespace lsa::fl {

struct FedBuffConfig {
  std::size_t rounds = 40;
  std::size_t buffer_k = 10;       ///< K
  std::uint64_t tau_max = 10;      ///< staleness bound (App. F.5)
  double eta_g = 1.0;              ///< server learning rate
  SgdConfig sgd;
  lsa::quant::StalenessPolicy staleness;
  std::uint64_t seed = 1;
  std::size_t eval_every = 2;

  // Secure-mode settings (ignored when secure == false).
  bool secure = false;
  std::uint64_t c_l = 1u << 16;  ///< update quantization levels (Fig. 12)
  std::uint64_t c_g = 1u << 6;   ///< staleness quantization levels (App. F.5)
  std::size_t privacy_t = 0;     ///< T for AsyncLightSecAgg (0 = N/10)
  std::size_t target_u = 0;      ///< U (0 = default N - D with D = N/5)
  /// Execution policy and decode strategy threaded into the secure
  /// aggregator's Params (encode fan-out, one-shot weighted recovery);
  /// results are bit-identical under every choice.
  lsa::sys::ExecPolicy exec{};
  lsa::coding::DecodeStrategy decode = lsa::coding::DecodeStrategy::kAuto;

  /// Optional transform applied to each arriving update before it reaches
  /// the server (identity when empty). This is where the DP baseline plugs
  /// in (dp/mechanism.h: per-user clip + Gaussian noise — the alternative
  /// the paper contrasts asynchronous LightSecAgg against, §1 / Remark 1).
  std::function<void(std::vector<double>&, std::size_t user)>
      update_transform;
};

/// Runs buffered asynchronous FL; partitions define the N users.
/// Returns per-round test accuracy (Fig. 7 / 11 / 12 curves).
[[nodiscard]] std::vector<RoundRecord> run_fedbuff(
    Model& global, const SyntheticDataset& data,
    const std::vector<std::vector<std::size_t>>& partitions,
    const FedBuffConfig& cfg);

}  // namespace lsa::fl
