// Synchronous federated averaging (McMahan et al. 2017) with pluggable
// aggregation: plaintext (the baseline the paper compares against for
// accuracy) or secure via any protocol::SecureAggregator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "fl/dataset.h"
#include "fl/model.h"
#include "fl/secure_adapter.h"
#include "fl/sgd.h"

namespace lsa::fl {

struct FedAvgConfig {
  std::size_t rounds = 20;
  double dropout_rate = 0.0;  ///< p: fraction of users dropping per round
  SgdConfig sgd;
  std::uint64_t seed = 1;
  /// Evaluate test accuracy every `eval_every` rounds (always the last).
  std::size_t eval_every = 1;
};

struct RoundRecord {
  std::size_t round = 0;
  double train_loss = 0.0;
  double test_accuracy = 0.0;
};

/// Aggregation callback: given local parameter vectors and the dropout
/// pattern, return the average over surviving users.
using Aggregate = std::function<std::vector<double>(
    const std::vector<std::vector<double>>&, const std::vector<bool>&)>;

/// Plaintext FedAvg aggregation.
[[nodiscard]] inline Aggregate plaintext_average() {
  return [](const std::vector<std::vector<double>>& locals,
            const std::vector<bool>& dropped) {
    std::size_t survivors = 0;
    std::vector<double> avg(locals.at(0).size(), 0.0);
    for (std::size_t i = 0; i < locals.size(); ++i) {
      if (dropped[i]) continue;
      ++survivors;
      for (std::size_t k = 0; k < avg.size(); ++k) avg[k] += locals[i][k];
    }
    lsa::require<lsa::ProtocolError>(survivors > 0,
                                     "fedavg: everyone dropped");
    for (auto& v : avg) v /= static_cast<double>(survivors);
    return avg;
  };
}

/// Secure aggregation through a protocol instance (keeps a reference; the
/// protocol must outlive the returned callback).
template <class F>
[[nodiscard]] Aggregate secure_aggregate(
    lsa::protocol::SecureAggregator<F>& protocol, std::uint64_t c_l,
    std::uint64_t quant_seed) {
  auto rng = std::make_shared<lsa::common::Xoshiro256ss>(quant_seed);
  return [&protocol, c_l, rng](const std::vector<std::vector<double>>& locals,
                               const std::vector<bool>& dropped) {
    return secure_average<F>(protocol, locals, dropped, c_l, *rng);
  };
}

class ServerOptimizer;  // fl/server_opt.h

/// Runs synchronous FL: each round every user trains locally from the global
/// model, a dropout pattern is drawn, and the (securely) aggregated average
/// of surviving users' parameters updates the global model — by replacement
/// (default) or through a server optimizer from fl/server_opt.h
/// (FedAvgM / FedAdam, the paper's FedOpt composability claim).
[[nodiscard]] std::vector<RoundRecord> run_fedavg(
    Model& global, const SyntheticDataset& data,
    const std::vector<std::vector<std::size_t>>& partitions,
    const FedAvgConfig& cfg, const Aggregate& aggregate,
    ServerOptimizer* server_opt = nullptr);

}  // namespace lsa::fl
