#include "fl/fedavg.h"

#include "fl/server_opt.h"

namespace lsa::fl {

std::vector<RoundRecord> run_fedavg(
    Model& global, const SyntheticDataset& data,
    const std::vector<std::vector<std::size_t>>& partitions,
    const FedAvgConfig& cfg, const Aggregate& aggregate,
    ServerOptimizer* server_opt) {
  const std::size_t n = partitions.size();
  lsa::require<lsa::ConfigError>(n >= 1, "fedavg: no users");
  lsa::common::Xoshiro256ss rng(cfg.seed);

  std::vector<RoundRecord> records;
  records.reserve(cfg.rounds);

  for (std::size_t round = 0; round < cfg.rounds; ++round) {
    // Local training at every user.
    std::vector<std::vector<double>> locals(n);
    double loss_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      auto local_model = global.clone();
      auto user_rng = rng.split();
      loss_sum += local_sgd(*local_model, data.train(), partitions[i],
                            cfg.sgd, user_rng);
      locals[i] = std::move(local_model->params());
    }

    // Dropout pattern (paper: pN users drop after uploading).
    std::vector<bool> dropped(n, false);
    const auto n_drop = static_cast<std::size_t>(
        cfg.dropout_rate * static_cast<double>(n));
    for (std::size_t k = 0; k < n_drop; ++k) {
      std::size_t pick;
      do {
        pick = static_cast<std::size_t>(rng.next_below(n));
      } while (dropped[pick]);
      dropped[pick] = true;
    }

    const auto avg = aggregate(locals, dropped);
    if (server_opt != nullptr) {
      server_opt->apply(global.params(), avg);
    } else {
      global.params() = avg;
    }

    RoundRecord rec;
    rec.round = round;
    rec.train_loss = loss_sum / static_cast<double>(n);
    if (round % cfg.eval_every == 0 || round + 1 == cfg.rounds) {
      rec.test_accuracy = accuracy(global, data.test());
    } else {
      rec.test_accuracy =
          records.empty() ? 0.0 : records.back().test_accuracy;
    }
    records.push_back(rec);
  }
  return records;
}

}  // namespace lsa::fl
