// Local SGD (the client-side optimizer of FedAvg / FedBuff).
//
// Runs E local epochs of minibatch SGD from the current global model
// (paper eq. 25; E = 5 in the synchronous experiments, App. D).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "fl/dataset.h"
#include "fl/model.h"

namespace lsa::fl {

struct SgdConfig {
  std::size_t epochs = 5;      ///< E
  std::size_t batch_size = 32;
  double lr = 0.1;             ///< eta_l
  /// FedProx proximal coefficient mu (Li et al. 2018): adds
  /// mu/2 * ||w - w_global||^2 to each local objective, taming client
  /// drift under heterogeneity. 0 = plain FedAvg local SGD. The paper's
  /// Remark ("applies to any aggregation-based FL approach, e.g. FedProx")
  /// holds because the proximal term changes only the local objective —
  /// the uploaded vector aggregates exactly as before.
  double prox_mu = 0.0;
};

/// Trains `model` in place on the examples indexed by `indices`.
/// Returns the average minibatch loss of the final epoch.
inline double local_sgd(Model& model, const std::vector<Example>& data,
                        std::span<const std::size_t> indices,
                        const SgdConfig& cfg,
                        lsa::common::Xoshiro256ss& rng) {
  if (indices.empty()) return 0.0;
  std::vector<std::size_t> order(indices.begin(), indices.end());
  std::vector<double> grad(model.dim());
  std::vector<Example> batch;
  // FedProx anchor: the global model the round started from.
  const std::vector<double> anchor =
      cfg.prox_mu > 0.0 ? model.params() : std::vector<double>{};
  double last_epoch_loss = 0.0;
  for (std::size_t e = 0; e < cfg.epochs; ++e) {
    // Shuffle.
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.next_below(order.size() - i));
      std::swap(order[i], order[j]);
    }
    double epoch_loss = 0.0;
    std::size_t num_batches = 0;
    for (std::size_t off = 0; off < order.size(); off += cfg.batch_size) {
      const std::size_t n = std::min(cfg.batch_size, order.size() - off);
      batch.clear();
      for (std::size_t k = 0; k < n; ++k) batch.push_back(data[order[off + k]]);
      std::fill(grad.begin(), grad.end(), 0.0);
      epoch_loss += model.loss_and_grad(batch, grad);
      ++num_batches;
      auto& p = model.params();
      if (cfg.prox_mu > 0.0) {
        for (std::size_t k = 0; k < p.size(); ++k) {
          grad[k] += cfg.prox_mu * (p[k] - anchor[k]);
        }
      }
      for (std::size_t k = 0; k < p.size(); ++k) p[k] -= cfg.lr * grad[k];
    }
    last_epoch_loss =
        num_batches > 0 ? epoch_loss / static_cast<double>(num_batches) : 0.0;
  }
  return last_epoch_loss;
}

}  // namespace lsa::fl
