// Server-side optimizers — the FedOpt family (paper §1 "can be applied to
// any aggregation-based FL approach (… FedOpt …)"; Reddi et al. 2020).
//
// Secure aggregation hands the server only the (securely computed) average
// of the surviving users' models. What the server *does* with that average
// is orthogonal to privacy:
//   * FedAvg:  x <- avg                       (replacement)
//   * FedAvgM: momentum on the pseudo-gradient x - avg
//   * FedAdam: Adam on the pseudo-gradient
// All three consume the same secure aggregate, demonstrating the paper's
// composability claim.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "common/error.h"

namespace lsa::fl {

class ServerOptimizer {
 public:
  virtual ~ServerOptimizer() = default;
  /// Updates `global` in place given the securely aggregated average of the
  /// surviving users' local models.
  virtual void apply(std::vector<double>& global,
                     std::span<const double> secure_average) = 0;
};

/// Plain FedAvg: the aggregate replaces the global model.
class FedAvgServer final : public ServerOptimizer {
 public:
  void apply(std::vector<double>& global,
             std::span<const double> secure_average) override {
    lsa::require<lsa::ConfigError>(global.size() == secure_average.size(),
                                   "server opt: dimension mismatch");
    global.assign(secure_average.begin(), secure_average.end());
  }
};

/// Server momentum on the pseudo-gradient g = x - avg (FedAvgM).
class FedAvgMServer final : public ServerOptimizer {
 public:
  explicit FedAvgMServer(double lr = 1.0, double momentum = 0.9)
      : lr_(lr), beta_(momentum) {}

  void apply(std::vector<double>& global,
             std::span<const double> secure_average) override {
    lsa::require<lsa::ConfigError>(global.size() == secure_average.size(),
                                   "server opt: dimension mismatch");
    if (velocity_.empty()) velocity_.assign(global.size(), 0.0);
    for (std::size_t k = 0; k < global.size(); ++k) {
      const double g = global[k] - secure_average[k];
      velocity_[k] = beta_ * velocity_[k] + g;
      global[k] -= lr_ * velocity_[k];
    }
  }

 private:
  double lr_;
  double beta_;
  std::vector<double> velocity_;
};

/// FedAdam (Reddi et al. 2020): Adam moments on the pseudo-gradient.
class FedAdamServer final : public ServerOptimizer {
 public:
  FedAdamServer(double lr = 0.1, double beta1 = 0.9, double beta2 = 0.99,
                double eps = 1e-3)
      : lr_(lr), b1_(beta1), b2_(beta2), eps_(eps) {}

  void apply(std::vector<double>& global,
             std::span<const double> secure_average) override {
    lsa::require<lsa::ConfigError>(global.size() == secure_average.size(),
                                   "server opt: dimension mismatch");
    if (m_.empty()) {
      m_.assign(global.size(), 0.0);
      v_.assign(global.size(), 0.0);
    }
    ++step_;
    const double bc1 = 1.0 - std::pow(b1_, static_cast<double>(step_));
    const double bc2 = 1.0 - std::pow(b2_, static_cast<double>(step_));
    for (std::size_t k = 0; k < global.size(); ++k) {
      const double g = global[k] - secure_average[k];
      m_[k] = b1_ * m_[k] + (1 - b1_) * g;
      v_[k] = b2_ * v_[k] + (1 - b2_) * g * g;
      const double mhat = m_[k] / bc1;
      const double vhat = v_[k] / bc2;
      global[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }

 private:
  double lr_, b1_, b2_, eps_;
  std::vector<double> m_, v_;
  std::uint64_t step_ = 0;
};

}  // namespace lsa::fl
