// Small convolutional network — the "variant of LeNet-5" (Xie et al. 2019)
// used by the paper's asynchronous experiments (Fig. 7/11/12).
//
// Architecture: conv(5x5, c1) -> ReLU -> avgpool(2x2) ->
//               conv(5x5, c2) -> ReLU -> avgpool(2x2) ->
//               fc(hidden) -> ReLU -> fc(classes) -> softmax.
// Implemented with direct loops (no BLAS), flat parameter storage, and
// hand-derived backward passes; gradient correctness is checked against
// finite differences in tests/fl/cnn_grad_test.cpp.
#pragma once

#include <memory>

#include "fl/model.h"

namespace lsa::fl {

class SmallCnn final : public Model {
 public:
  struct Shape {
    std::size_t channels = 1;  ///< input channels
    std::size_t height = 28;
    std::size_t width = 28;
    std::size_t conv1 = 6;    ///< first conv output channels
    std::size_t conv2 = 16;   ///< second conv output channels
    std::size_t hidden = 64;  ///< fc hidden units
    std::size_t classes = 10;
  };

  SmallCnn(const Shape& shape, std::uint64_t init_seed);

  [[nodiscard]] const Shape& shape() const { return shape_; }

  double loss_and_grad(std::span<const Example> batch,
                       std::span<double> grad) override;
  [[nodiscard]] int predict(const Example& ex) const override;
  [[nodiscard]] std::unique_ptr<Model> clone() const override;

 private:
  struct Activations;  // forward-pass scratch

  void forward(const Example& ex, Activations& act) const;

  Shape shape_;
  // Derived dimensions (valid 5x5 convs, 2x2 pools).
  std::size_t h1_, w1_, hp1_, wp1_, h2_, w2_, hp2_, wp2_, flat_;
  // Flat parameter offsets.
  std::size_t off_w1_, off_b1_, off_w2_, off_b2_, off_fw1_, off_fb1_,
      off_fw2_, off_fb2_;
};

}  // namespace lsa::fl
