#include "fl/fedbuff.h"

#include <deque>

#include "common/error.h"
#include "field/fp.h"
#include "quant/quantizer.h"

namespace lsa::fl {

namespace {

using lsa::field::Fp32;
using rep = Fp32::rep;

struct Arrival {
  std::size_t user = 0;
  std::uint64_t born_round = 0;
  std::vector<double> delta;  ///< x(t_i) - x_i^(E)
};

}  // namespace

std::vector<RoundRecord> run_fedbuff(
    Model& global, const SyntheticDataset& data,
    const std::vector<std::vector<std::size_t>>& partitions,
    const FedBuffConfig& cfg) {
  const std::size_t n = partitions.size();
  const std::size_t d = global.dim();
  lsa::require<lsa::ConfigError>(n >= cfg.buffer_k && cfg.buffer_k >= 1,
                                 "fedbuff: need K <= N");
  lsa::common::Xoshiro256ss rng(cfg.seed);
  // Separate stream for quantization noise: secure and plaintext runs with
  // the same seed then share an identical arrival/staleness schedule, so
  // their curves differ only by quantization (the Fig. 7/11 comparison).
  lsa::common::Xoshiro256ss quant_rng(cfg.seed ^ 0x9e3779b97f4a7c15ull);

  // History of global models so arrivals can train from stale snapshots.
  std::deque<std::vector<double>> history;  // history[0] = newest
  history.push_front(global.params());

  // Secure-mode machinery.
  std::unique_ptr<lsa::protocol::AsyncLightSecAgg<Fp32>> secure;
  lsa::quant::Quantizer<Fp32> quant(cfg.c_l);
  if (cfg.secure) {
    lsa::protocol::Params p;
    p.num_users = n;
    p.privacy = cfg.privacy_t == 0 ? std::max<std::size_t>(1, n / 10)
                                   : cfg.privacy_t;
    const std::size_t u = cfg.target_u == 0
                              ? std::max(p.privacy + 1, n - n / 5)
                              : cfg.target_u;
    p.dropout = n - u;
    p.target_survivors = u;
    p.model_dim = d;
    p.exec = cfg.exec;
    p.decode = cfg.decode;
    secure = std::make_unique<lsa::protocol::AsyncLightSecAgg<Fp32>>(
        p, cfg.buffer_k, cfg.staleness, cfg.c_g, cfg.seed ^ 0xfedbull);
  }

  std::vector<RoundRecord> records;
  records.reserve(cfg.rounds);
  const std::vector<bool> all_active(n, true);

  for (std::size_t round = 0; round < cfg.rounds; ++round) {
    // K distinct arrivals this round, each with its own staleness.
    std::vector<bool> used(n, false);
    std::vector<Arrival> arrivals;
    arrivals.reserve(cfg.buffer_k);
    for (std::size_t k = 0; k < cfg.buffer_k; ++k) {
      std::size_t user;
      do {
        user = static_cast<std::size_t>(rng.next_below(n));
      } while (used[user]);
      used[user] = true;
      const std::uint64_t tau =
          std::min<std::uint64_t>(rng.next_below(cfg.tau_max + 1), round);
      const std::uint64_t born = round - tau;

      // Train from the stale snapshot.
      auto local = global.clone();
      local->params() = history[tau];
      auto user_rng = rng.split();
      (void)local_sgd(*local, data.train(), partitions[user], cfg.sgd,
                      user_rng);
      Arrival a;
      a.user = user;
      a.born_round = born;
      a.delta.resize(d);
      for (std::size_t i = 0; i < d; ++i) {
        a.delta[i] = history[tau][i] - local->params()[i];
      }
      if (cfg.update_transform) cfg.update_transform(a.delta, a.user);
      arrivals.push_back(std::move(a));
    }

    // Server-side aggregation.
    std::vector<double> update(d, 0.0);
    if (!cfg.secure) {
      double weight_sum = 0.0;
      for (const auto& a : arrivals) {
        const double w = cfg.staleness.weight(round - a.born_round);
        weight_sum += w;
        for (std::size_t i = 0; i < d; ++i) update[i] += w * a.delta[i];
      }
      for (auto& v : update) v /= weight_sum;
    } else {
      // Offline sharing (timestamped), masking, buffering, one-shot recovery.
      for (const auto& a : arrivals) {
        auto mask = secure->generate_and_share_mask(a.user, a.born_round);
        auto q =
            quant.quantize_vector(std::span<const double>(a.delta), quant_rng);
        lsa::protocol::AsyncLightSecAgg<Fp32>::BufferedUpdate upd;
        upd.user = a.user;
        upd.born_round = a.born_round;
        upd.masked = secure->mask_update(q, mask);
        (void)secure->buffer_update(std::move(upd));
      }
      const auto out = secure->aggregate(round, all_active);
      // Normalize by sum_i w_i: the c_g factor common to numerator and
      // denominator cancels, leaving the plaintext path's normalization up
      // to staleness quantization (eq. 37).
      quant.dequantize_vector_scaled(
          std::span<const rep>(out.weighted_sum), std::span<double>(update),
          static_cast<double>(out.weight_sum));
    }

    auto& p = global.params();
    for (std::size_t i = 0; i < d; ++i) p[i] -= cfg.eta_g * update[i];

    history.push_front(global.params());
    while (history.size() > cfg.tau_max + 1) history.pop_back();

    RoundRecord rec;
    rec.round = round;
    rec.train_loss = 0.0;
    if (round % cfg.eval_every == 0 || round + 1 == cfg.rounds) {
      rec.test_accuracy = accuracy(global, data.test());
    } else {
      rec.test_accuracy =
          records.empty() ? 0.0 : records.back().test_accuracy;
    }
    records.push_back(rec);
  }
  return records;
}

}  // namespace lsa::fl
