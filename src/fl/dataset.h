// Synthetic federated datasets.
//
// Substitution (see DESIGN.md): the paper trains on MNIST / FEMNIST /
// CIFAR-10 / GLD-23K. Secure-aggregation cost depends only on the model
// dimension d, and the convergence experiments need a learnable task with
// controllable client heterogeneity — both provided by Gaussian-mixture
// classification data with matched input dimensionality. Presets mirror the
// paper's datasets' shapes (28x28x1 MNIST-like, 32x32x3 CIFAR-like, 62-class
// FEMNIST-like).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace lsa::fl {

struct Example {
  std::vector<float> x;
  int label = 0;
};

class SyntheticDataset {
 public:
  struct Config {
    std::size_t input_dim = 0;
    std::size_t num_classes = 0;
    std::size_t num_train = 0;
    std::size_t num_test = 0;
    double class_sep = 2.2;  ///< distance scale between class means
    double noise = 1.0;      ///< within-class standard deviation
    std::uint64_t seed = 0;
    /// When nonzero, class means are spatially smoothed over a
    /// (channels, height, width) image grid so convolutional models have
    /// local structure to exploit (image presets set these automatically).
    std::size_t height = 0;
    std::size_t width = 0;
    std::size_t channels = 1;
  };

  /// Gaussian mixture: one spherical cluster per class, means ~ N(0, sep^2).
  [[nodiscard]] static SyntheticDataset gaussian_mixture(const Config& cfg);

  /// 28x28x1, 10 classes — MNIST-shaped (LR model dim = 7,850, Table 2 №1).
  [[nodiscard]] static SyntheticDataset mnist_like(std::size_t train,
                                                   std::size_t test,
                                                   std::uint64_t seed);

  /// 28x28x1, 62 classes — FEMNIST-shaped.
  [[nodiscard]] static SyntheticDataset femnist_like(std::size_t train,
                                                     std::size_t test,
                                                     std::uint64_t seed);

  /// 32x32x3, 10 classes — CIFAR-10-shaped.
  [[nodiscard]] static SyntheticDataset cifar10_like(std::size_t train,
                                                     std::size_t test,
                                                     std::uint64_t seed);

  [[nodiscard]] const std::vector<Example>& train() const { return train_; }
  [[nodiscard]] const std::vector<Example>& test() const { return test_; }
  [[nodiscard]] std::size_t input_dim() const { return cfg_.input_dim; }
  [[nodiscard]] std::size_t num_classes() const { return cfg_.num_classes; }

  /// IID partition: a random equal split of the training set.
  [[nodiscard]] std::vector<std::vector<std::size_t>> partition_iid(
      std::size_t num_users, std::uint64_t seed) const;

  /// Non-IID partition by class shards (each user sees few classes), the
  /// standard FedAvg heterogeneity protocol (McMahan et al. 2017).
  [[nodiscard]] std::vector<std::vector<std::size_t>> partition_shards(
      std::size_t num_users, std::size_t shards_per_user,
      std::uint64_t seed) const;

 private:
  Config cfg_;
  std::vector<Example> train_;
  std::vector<Example> test_;
};

}  // namespace lsa::fl
