#include "fl/model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace lsa::fl {

namespace {

/// In-place softmax with the max-subtraction trick.
void softmax(std::span<double> v) {
  double mx = v[0];
  for (double x : v) mx = std::max(mx, x);
  double sum = 0.0;
  for (auto& x : v) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (auto& x : v) x /= sum;
}

void xavier_init(std::vector<double>& p, std::size_t fan_in,
                 std::uint64_t seed) {
  lsa::common::Xoshiro256ss rng(seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(fan_in));
  for (auto& w : p) w = rng.next_gaussian() * scale;
}

}  // namespace

double accuracy(const Model& model, std::span<const Example> test) {
  if (test.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& ex : test) {
    if (model.predict(ex) == ex.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

// ---------------------------------------------------------------- LogReg

LogisticRegression::LogisticRegression(std::size_t input_dim,
                                       std::size_t num_classes,
                                       std::uint64_t init_seed)
    : in_(input_dim), classes_(num_classes) {
  lsa::require<lsa::ConfigError>(input_dim > 0 && num_classes > 1,
                                 "logreg: bad shape");
  params_.assign(in_ * classes_ + classes_, 0.0);
  xavier_init(params_, in_, init_seed);
  // Zero the biases (the tail of the flat vector).
  std::fill(params_.end() - static_cast<std::ptrdiff_t>(classes_),
            params_.end(), 0.0);
}

void LogisticRegression::logits(const Example& ex,
                                std::span<double> out) const {
  const double* w = params_.data();
  const double* b = params_.data() + in_ * classes_;
  for (std::size_t c = 0; c < classes_; ++c) {
    double acc = b[c];
    const double* wc = w + c * in_;
    for (std::size_t k = 0; k < in_; ++k) acc += wc[k] * ex.x[k];
    out[c] = acc;
  }
}

double LogisticRegression::loss_and_grad(std::span<const Example> batch,
                                         std::span<double> grad) {
  lsa::require<lsa::ConfigError>(grad.size() == dim(),
                                 "logreg: bad grad buffer");
  if (batch.empty()) return 0.0;
  std::vector<double> p(classes_);
  double loss = 0.0;
  double* gw = grad.data();
  double* gb = grad.data() + in_ * classes_;
  for (const auto& ex : batch) {
    logits(ex, p);
    softmax(p);
    loss += -std::log(std::max(p[static_cast<std::size_t>(ex.label)], 1e-12));
    for (std::size_t c = 0; c < classes_; ++c) {
      const double delta =
          p[c] - (static_cast<int>(c) == ex.label ? 1.0 : 0.0);
      double* gwc = gw + c * in_;
      for (std::size_t k = 0; k < in_; ++k) gwc[k] += delta * ex.x[k];
      gb[c] += delta;
    }
  }
  const double inv = 1.0 / static_cast<double>(batch.size());
  for (auto& g : grad) g *= inv;
  return loss * inv;
}

int LogisticRegression::predict(const Example& ex) const {
  std::vector<double> p(classes_);
  logits(ex, p);
  return static_cast<int>(
      std::max_element(p.begin(), p.end()) - p.begin());
}

std::unique_ptr<Model> LogisticRegression::clone() const {
  auto m = std::make_unique<LogisticRegression>(in_, classes_, 0);
  m->params() = params_;
  return m;
}

// ------------------------------------------------------------------- MLP

Mlp::Mlp(std::size_t input_dim, std::size_t hidden, std::size_t num_classes,
         std::uint64_t init_seed)
    : in_(input_dim), hidden_(hidden), classes_(num_classes) {
  lsa::require<lsa::ConfigError>(input_dim > 0 && hidden > 0 &&
                                     num_classes > 1,
                                 "mlp: bad shape");
  params_.assign(in_ * hidden_ + hidden_ + hidden_ * classes_ + classes_,
                 0.0);
  xavier_init(params_, in_, init_seed);
}

double Mlp::loss_and_grad(std::span<const Example> batch,
                          std::span<double> grad) {
  lsa::require<lsa::ConfigError>(grad.size() == dim(), "mlp: bad grad buffer");
  if (batch.empty()) return 0.0;
  const double* w1 = params_.data();
  const double* b1 = w1 + in_ * hidden_;
  const double* w2 = b1 + hidden_;
  const double* b2 = w2 + hidden_ * classes_;
  double* gw1 = grad.data();
  double* gb1 = gw1 + in_ * hidden_;
  double* gw2 = gb1 + hidden_;
  double* gb2 = gw2 + hidden_ * classes_;

  std::vector<double> h(hidden_), p(classes_), dh(hidden_);
  double loss = 0.0;
  for (const auto& ex : batch) {
    // Forward.
    for (std::size_t j = 0; j < hidden_; ++j) {
      double acc = b1[j];
      const double* w1j = w1 + j * in_;
      for (std::size_t k = 0; k < in_; ++k) acc += w1j[k] * ex.x[k];
      h[j] = acc > 0.0 ? acc : 0.0;  // ReLU
    }
    for (std::size_t c = 0; c < classes_; ++c) {
      double acc = b2[c];
      const double* w2c = w2 + c * hidden_;
      for (std::size_t j = 0; j < hidden_; ++j) acc += w2c[j] * h[j];
      p[c] = acc;
    }
    softmax(p);
    loss += -std::log(std::max(p[static_cast<std::size_t>(ex.label)], 1e-12));
    // Backward.
    std::fill(dh.begin(), dh.end(), 0.0);
    for (std::size_t c = 0; c < classes_; ++c) {
      const double delta =
          p[c] - (static_cast<int>(c) == ex.label ? 1.0 : 0.0);
      double* gw2c = gw2 + c * hidden_;
      const double* w2c = w2 + c * hidden_;
      for (std::size_t j = 0; j < hidden_; ++j) {
        gw2c[j] += delta * h[j];
        dh[j] += delta * w2c[j];
      }
      gb2[c] += delta;
    }
    for (std::size_t j = 0; j < hidden_; ++j) {
      if (h[j] <= 0.0) continue;  // ReLU gate
      double* gw1j = gw1 + j * in_;
      for (std::size_t k = 0; k < in_; ++k) gw1j[k] += dh[j] * ex.x[k];
      gb1[j] += dh[j];
    }
  }
  const double inv = 1.0 / static_cast<double>(batch.size());
  for (auto& g : grad) g *= inv;
  return loss * inv;
}

int Mlp::predict(const Example& ex) const {
  const double* w1 = params_.data();
  const double* b1 = w1 + in_ * hidden_;
  const double* w2 = b1 + hidden_;
  const double* b2 = w2 + hidden_ * classes_;
  std::vector<double> h(hidden_), p(classes_);
  for (std::size_t j = 0; j < hidden_; ++j) {
    double acc = b1[j];
    const double* w1j = w1 + j * in_;
    for (std::size_t k = 0; k < in_; ++k) acc += w1j[k] * ex.x[k];
    h[j] = acc > 0.0 ? acc : 0.0;
  }
  for (std::size_t c = 0; c < classes_; ++c) {
    double acc = b2[c];
    const double* w2c = w2 + c * hidden_;
    for (std::size_t j = 0; j < hidden_; ++j) acc += w2c[j] * h[j];
    p[c] = acc;
  }
  return static_cast<int>(
      std::max_element(p.begin(), p.end()) - p.begin());
}

std::unique_ptr<Model> Mlp::clone() const {
  auto m = std::make_unique<Mlp>(in_, hidden_, classes_, 0);
  m->params() = params_;
  return m;
}

}  // namespace lsa::fl
