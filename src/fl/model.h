// Flat-parameter model interface for the FL harness.
//
// Models expose their parameters as one contiguous double vector — exactly
// the view secure aggregation needs (quantize the flat vector, mask it,
// aggregate in the field). Gradients are computed into an equally flat
// buffer. Substitution note (DESIGN.md): the paper's two large models
// (MobileNetV3, EfficientNet-B0) enter timing experiments through their
// parameter counts only; convergence experiments use the LR / MLP / CNN
// implemented here, mirroring the paper's own use of LeNet-class models for
// the asynchronous study.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "fl/dataset.h"

namespace lsa::fl {

class Model {
 public:
  virtual ~Model() = default;

  /// Number of parameters d.
  [[nodiscard]] std::size_t dim() const { return params_.size(); }

  [[nodiscard]] std::vector<double>& params() { return params_; }
  [[nodiscard]] const std::vector<double>& params() const { return params_; }

  /// Average loss over the batch; accumulates d(loss)/d(params) into
  /// grad (which must be zeroed by the caller and have size dim()).
  virtual double loss_and_grad(std::span<const Example> batch,
                               std::span<double> grad) = 0;

  /// Class prediction for one example.
  [[nodiscard]] virtual int predict(const Example& ex) const = 0;

  /// Deep copy (same architecture, same parameters).
  [[nodiscard]] virtual std::unique_ptr<Model> clone() const = 0;

 protected:
  std::vector<double> params_;
};

/// Fraction of test examples classified correctly.
[[nodiscard]] double accuracy(const Model& model,
                              std::span<const Example> test);

/// Multiclass logistic regression (softmax + cross-entropy).
/// dim = input_dim * classes + classes (= 7,850 for the MNIST-shaped task,
/// matching Table 2 row 1).
class LogisticRegression final : public Model {
 public:
  LogisticRegression(std::size_t input_dim, std::size_t num_classes,
                     std::uint64_t init_seed);

  double loss_and_grad(std::span<const Example> batch,
                       std::span<double> grad) override;
  [[nodiscard]] int predict(const Example& ex) const override;
  [[nodiscard]] std::unique_ptr<Model> clone() const override;

 private:
  void logits(const Example& ex, std::span<double> out) const;

  std::size_t in_;
  std::size_t classes_;
};

/// One-hidden-layer MLP with ReLU (the paper's "CNN (McMahan et al. 2017)"
/// slot in convergence sanity checks where a convolutional net is overkill).
class Mlp final : public Model {
 public:
  Mlp(std::size_t input_dim, std::size_t hidden, std::size_t num_classes,
      std::uint64_t init_seed);

  double loss_and_grad(std::span<const Example> batch,
                       std::span<double> grad) override;
  [[nodiscard]] int predict(const Example& ex) const override;
  [[nodiscard]] std::unique_ptr<Model> clone() const override;

 private:
  std::size_t in_, hidden_, classes_;
};

}  // namespace lsa::fl
