#include "fl/cnn.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace lsa::fl {

namespace {
constexpr std::size_t kK = 5;  // conv kernel size

void softmax(std::span<double> v) {
  double mx = v[0];
  for (double x : v) mx = std::max(mx, x);
  double sum = 0.0;
  for (auto& x : v) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (auto& x : v) x /= sum;
}
}  // namespace

struct SmallCnn::Activations {
  std::vector<double> a1;   // conv1 post-ReLU  [c1][h1][w1]
  std::vector<double> p1;   // pool1            [c1][hp1][wp1]
  std::vector<double> a2;   // conv2 post-ReLU  [c2][h2][w2]
  std::vector<double> p2;   // pool2 (= flat)   [c2][hp2][wp2]
  std::vector<double> h;    // fc hidden post-ReLU
  std::vector<double> out;  // logits -> probabilities
};

SmallCnn::SmallCnn(const Shape& shape, std::uint64_t init_seed)
    : shape_(shape) {
  lsa::require<lsa::ConfigError>(
      shape.height > 2 * (kK - 1) + 2 && shape.width > 2 * (kK - 1) + 2,
      "cnn: input too small for two 5x5 convs");
  h1_ = shape.height - kK + 1;
  w1_ = shape.width - kK + 1;
  lsa::require<lsa::ConfigError>(h1_ % 2 == 0 && w1_ % 2 == 0,
                                 "cnn: conv1 output must pool evenly");
  hp1_ = h1_ / 2;
  wp1_ = w1_ / 2;
  lsa::require<lsa::ConfigError>(hp1_ >= kK && wp1_ >= kK,
                                 "cnn: pooled map too small for conv2");
  h2_ = hp1_ - kK + 1;
  w2_ = wp1_ - kK + 1;
  // Odd conv2 output maps (e.g. 5x5 on CIFAR shapes) skip the trailing
  // row/col in the pool, as floor-division pooling does.
  hp2_ = h2_ / 2;
  wp2_ = w2_ / 2;
  lsa::require<lsa::ConfigError>(hp2_ >= 1 && wp2_ >= 1,
                                 "cnn: empty pool2 output");
  flat_ = shape.conv2 * hp2_ * wp2_;

  const std::size_t n_w1 = shape.conv1 * shape.channels * kK * kK;
  const std::size_t n_w2 = shape.conv2 * shape.conv1 * kK * kK;
  const std::size_t n_fw1 = shape.hidden * flat_;
  const std::size_t n_fw2 = shape.classes * shape.hidden;
  off_w1_ = 0;
  off_b1_ = off_w1_ + n_w1;
  off_w2_ = off_b1_ + shape.conv1;
  off_b2_ = off_w2_ + n_w2;
  off_fw1_ = off_b2_ + shape.conv2;
  off_fb1_ = off_fw1_ + n_fw1;
  off_fw2_ = off_fb1_ + shape.hidden;
  off_fb2_ = off_fw2_ + n_fw2;
  params_.assign(off_fb2_ + shape.classes, 0.0);

  lsa::common::Xoshiro256ss rng(init_seed);
  auto init_range = [&](std::size_t off, std::size_t n, std::size_t fan_in) {
    const double scale = 1.0 / std::sqrt(static_cast<double>(fan_in));
    for (std::size_t i = 0; i < n; ++i) {
      params_[off + i] = rng.next_gaussian() * scale;
    }
  };
  init_range(off_w1_, n_w1, shape.channels * kK * kK);
  init_range(off_w2_, n_w2, shape.conv1 * kK * kK);
  init_range(off_fw1_, n_fw1, flat_);
  init_range(off_fw2_, n_fw2, shape.hidden);
}

void SmallCnn::forward(const Example& ex, Activations& act) const {
  const auto& s = shape_;
  lsa::require<lsa::ConfigError>(
      ex.x.size() == s.channels * s.height * s.width,
      "cnn: example has wrong input size");
  const double* w1 = params_.data() + off_w1_;
  const double* b1 = params_.data() + off_b1_;
  const double* w2 = params_.data() + off_w2_;
  const double* b2 = params_.data() + off_b2_;
  const double* fw1 = params_.data() + off_fw1_;
  const double* fb1 = params_.data() + off_fb1_;
  const double* fw2 = params_.data() + off_fw2_;
  const double* fb2 = params_.data() + off_fb2_;

  act.a1.assign(s.conv1 * h1_ * w1_, 0.0);
  act.p1.assign(s.conv1 * hp1_ * wp1_, 0.0);
  act.a2.assign(s.conv2 * h2_ * w2_, 0.0);
  act.p2.assign(flat_, 0.0);
  act.h.assign(s.hidden, 0.0);
  act.out.assign(s.classes, 0.0);

  // conv1 + ReLU
  for (std::size_t o = 0; o < s.conv1; ++o) {
    for (std::size_t y = 0; y < h1_; ++y) {
      for (std::size_t x = 0; x < w1_; ++x) {
        double acc = b1[o];
        for (std::size_t c = 0; c < s.channels; ++c) {
          const double* wk = w1 + ((o * s.channels + c) * kK) * kK;
          const float* in = ex.x.data() + c * s.height * s.width;
          for (std::size_t ky = 0; ky < kK; ++ky) {
            const float* row = in + (y + ky) * s.width + x;
            const double* wr = wk + ky * kK;
            for (std::size_t kx = 0; kx < kK; ++kx) {
              acc += wr[kx] * static_cast<double>(row[kx]);
            }
          }
        }
        act.a1[(o * h1_ + y) * w1_ + x] = acc > 0.0 ? acc : 0.0;
      }
    }
  }
  // pool1 (2x2 average)
  for (std::size_t c = 0; c < s.conv1; ++c) {
    for (std::size_t y = 0; y < hp1_; ++y) {
      for (std::size_t x = 0; x < wp1_; ++x) {
        const std::size_t base = (c * h1_ + 2 * y) * w1_ + 2 * x;
        act.p1[(c * hp1_ + y) * wp1_ + x] =
            0.25 * (act.a1[base] + act.a1[base + 1] + act.a1[base + w1_] +
                    act.a1[base + w1_ + 1]);
      }
    }
  }
  // conv2 + ReLU
  for (std::size_t o = 0; o < s.conv2; ++o) {
    for (std::size_t y = 0; y < h2_; ++y) {
      for (std::size_t x = 0; x < w2_; ++x) {
        double acc = b2[o];
        for (std::size_t c = 0; c < s.conv1; ++c) {
          const double* wk = w2 + ((o * s.conv1 + c) * kK) * kK;
          const double* in = act.p1.data() + c * hp1_ * wp1_;
          for (std::size_t ky = 0; ky < kK; ++ky) {
            const double* row = in + (y + ky) * wp1_ + x;
            const double* wr = wk + ky * kK;
            for (std::size_t kx = 0; kx < kK; ++kx) acc += wr[kx] * row[kx];
          }
        }
        act.a2[(o * h2_ + y) * w2_ + x] = acc > 0.0 ? acc : 0.0;
      }
    }
  }
  // pool2
  for (std::size_t c = 0; c < s.conv2; ++c) {
    for (std::size_t y = 0; y < hp2_; ++y) {
      for (std::size_t x = 0; x < wp2_; ++x) {
        const std::size_t base = (c * h2_ + 2 * y) * w2_ + 2 * x;
        act.p2[(c * hp2_ + y) * wp2_ + x] =
            0.25 * (act.a2[base] + act.a2[base + 1] + act.a2[base + w2_] +
                    act.a2[base + w2_ + 1]);
      }
    }
  }
  // fc1 + ReLU
  for (std::size_t j = 0; j < s.hidden; ++j) {
    double acc = fb1[j];
    const double* w = fw1 + j * flat_;
    for (std::size_t k = 0; k < flat_; ++k) acc += w[k] * act.p2[k];
    act.h[j] = acc > 0.0 ? acc : 0.0;
  }
  // fc2 (logits)
  for (std::size_t c = 0; c < s.classes; ++c) {
    double acc = fb2[c];
    const double* w = fw2 + c * s.hidden;
    for (std::size_t j = 0; j < s.hidden; ++j) acc += w[j] * act.h[j];
    act.out[c] = acc;
  }
}

double SmallCnn::loss_and_grad(std::span<const Example> batch,
                               std::span<double> grad) {
  lsa::require<lsa::ConfigError>(grad.size() == dim(),
                                 "cnn: bad grad buffer");
  if (batch.empty()) return 0.0;
  const auto& s = shape_;
  const double* w2 = params_.data() + off_w2_;
  const double* fw1 = params_.data() + off_fw1_;
  const double* fw2 = params_.data() + off_fw2_;
  double* gw1 = grad.data() + off_w1_;
  double* gb1 = grad.data() + off_b1_;
  double* gw2 = grad.data() + off_w2_;
  double* gb2 = grad.data() + off_b2_;
  double* gfw1 = grad.data() + off_fw1_;
  double* gfb1 = grad.data() + off_fb1_;
  double* gfw2 = grad.data() + off_fw2_;
  double* gfb2 = grad.data() + off_fb2_;

  Activations act;
  std::vector<double> dh(s.hidden), dflat(flat_), da2(s.conv2 * h2_ * w2_),
      dp1(s.conv1 * hp1_ * wp1_), da1(s.conv1 * h1_ * w1_);
  double loss = 0.0;

  for (const auto& ex : batch) {
    forward(ex, act);
    std::vector<double> p = act.out;
    softmax(p);
    loss += -std::log(std::max(p[static_cast<std::size_t>(ex.label)], 1e-12));

    // dLogits
    for (std::size_t c = 0; c < s.classes; ++c) {
      p[c] -= (static_cast<int>(c) == ex.label ? 1.0 : 0.0);
    }
    // fc2 backward
    std::fill(dh.begin(), dh.end(), 0.0);
    for (std::size_t c = 0; c < s.classes; ++c) {
      const double delta = p[c];
      double* g = gfw2 + c * s.hidden;
      const double* w = fw2 + c * s.hidden;
      for (std::size_t j = 0; j < s.hidden; ++j) {
        g[j] += delta * act.h[j];
        dh[j] += delta * w[j];
      }
      gfb2[c] += delta;
    }
    // fc1 backward (through ReLU on h)
    std::fill(dflat.begin(), dflat.end(), 0.0);
    for (std::size_t j = 0; j < s.hidden; ++j) {
      if (act.h[j] <= 0.0) continue;
      const double delta = dh[j];
      double* g = gfw1 + j * flat_;
      const double* w = fw1 + j * flat_;
      for (std::size_t k = 0; k < flat_; ++k) {
        g[k] += delta * act.p2[k];
        dflat[k] += delta * w[k];
      }
      gfb1[j] += delta;
    }
    // pool2 backward -> da2 (through ReLU on a2)
    std::fill(da2.begin(), da2.end(), 0.0);
    for (std::size_t c = 0; c < s.conv2; ++c) {
      for (std::size_t y = 0; y < hp2_; ++y) {
        for (std::size_t x = 0; x < wp2_; ++x) {
          const double g = 0.25 * dflat[(c * hp2_ + y) * wp2_ + x];
          const std::size_t base = (c * h2_ + 2 * y) * w2_ + 2 * x;
          da2[base] += g;
          da2[base + 1] += g;
          da2[base + w2_] += g;
          da2[base + w2_ + 1] += g;
        }
      }
    }
    for (std::size_t i = 0; i < da2.size(); ++i) {
      if (act.a2[i] <= 0.0) da2[i] = 0.0;
    }
    // conv2 backward -> gw2, gb2, dp1
    std::fill(dp1.begin(), dp1.end(), 0.0);
    for (std::size_t o = 0; o < s.conv2; ++o) {
      for (std::size_t y = 0; y < h2_; ++y) {
        for (std::size_t x = 0; x < w2_; ++x) {
          const double delta = da2[(o * h2_ + y) * w2_ + x];
          if (delta == 0.0) continue;
          gb2[o] += delta;
          for (std::size_t c = 0; c < s.conv1; ++c) {
            double* gk = gw2 + ((o * s.conv1 + c) * kK) * kK;
            const double* wk = w2 + ((o * s.conv1 + c) * kK) * kK;
            const double* in = act.p1.data() + c * hp1_ * wp1_;
            double* din = dp1.data() + c * hp1_ * wp1_;
            for (std::size_t ky = 0; ky < kK; ++ky) {
              const std::size_t row = (y + ky) * wp1_ + x;
              for (std::size_t kx = 0; kx < kK; ++kx) {
                gk[ky * kK + kx] += delta * in[row + kx];
                din[row + kx] += delta * wk[ky * kK + kx];
              }
            }
          }
        }
      }
    }
    // pool1 backward -> da1 (through ReLU on a1)
    std::fill(da1.begin(), da1.end(), 0.0);
    for (std::size_t c = 0; c < s.conv1; ++c) {
      for (std::size_t y = 0; y < hp1_; ++y) {
        for (std::size_t x = 0; x < wp1_; ++x) {
          const double g = 0.25 * dp1[(c * hp1_ + y) * wp1_ + x];
          const std::size_t base = (c * h1_ + 2 * y) * w1_ + 2 * x;
          da1[base] += g;
          da1[base + 1] += g;
          da1[base + w1_] += g;
          da1[base + w1_ + 1] += g;
        }
      }
    }
    for (std::size_t i = 0; i < da1.size(); ++i) {
      if (act.a1[i] <= 0.0) da1[i] = 0.0;
    }
    // conv1 backward -> gw1, gb1
    for (std::size_t o = 0; o < s.conv1; ++o) {
      for (std::size_t y = 0; y < h1_; ++y) {
        for (std::size_t x = 0; x < w1_; ++x) {
          const double delta = da1[(o * h1_ + y) * w1_ + x];
          if (delta == 0.0) continue;
          gb1[o] += delta;
          for (std::size_t c = 0; c < s.channels; ++c) {
            double* gk = gw1 + ((o * s.channels + c) * kK) * kK;
            const float* in = ex.x.data() + c * s.height * s.width;
            for (std::size_t ky = 0; ky < kK; ++ky) {
              const float* row = in + (y + ky) * s.width + x;
              for (std::size_t kx = 0; kx < kK; ++kx) {
                gk[ky * kK + kx] += delta * static_cast<double>(row[kx]);
              }
            }
          }
        }
      }
    }
  }

  const double inv = 1.0 / static_cast<double>(batch.size());
  for (auto& g : grad) g *= inv;
  return loss * inv;
}

int SmallCnn::predict(const Example& ex) const {
  Activations act;
  forward(ex, act);
  return static_cast<int>(
      std::max_element(act.out.begin(), act.out.end()) - act.out.begin());
}

std::unique_ptr<Model> SmallCnn::clone() const {
  auto m = std::make_unique<SmallCnn>(shape_, 0);
  m->params() = params_;
  return m;
}

}  // namespace lsa::fl
