#include "fl/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace lsa::fl {

namespace {

Example draw_example(const std::vector<std::vector<float>>& means, int label,
                     double noise, lsa::common::Xoshiro256ss& rng) {
  Example e;
  e.label = label;
  const auto& mu = means[static_cast<std::size_t>(label)];
  e.x.resize(mu.size());
  for (std::size_t k = 0; k < mu.size(); ++k) {
    e.x[k] = mu[k] + static_cast<float>(noise * rng.next_gaussian());
  }
  return e;
}

}  // namespace

SyntheticDataset SyntheticDataset::gaussian_mixture(const Config& cfg) {
  lsa::require<lsa::ConfigError>(cfg.input_dim > 0 && cfg.num_classes > 1,
                                 "dataset: bad config");
  SyntheticDataset ds;
  ds.cfg_ = cfg;
  lsa::common::Xoshiro256ss rng(cfg.seed);

  // Class means: Gaussian directions, optionally smoothed over the image
  // grid (several 3x3 box-blur passes per channel) so that convolutional
  // models see local spatial correlation — mirroring real image classes.
  // Norms are fixed to class_sep * sqrt(dim) / 6 so pairwise separability
  // (relative to the within-class noise of norm ~ noise * sqrt(dim)) is
  // stable across input dimensions.
  const bool spatial = cfg.height > 0 && cfg.width > 0 &&
                       cfg.channels * cfg.height * cfg.width == cfg.input_dim;
  std::vector<std::vector<float>> means(cfg.num_classes);
  for (auto& mu : means) {
    mu.resize(cfg.input_dim);
    for (auto& v : mu) v = static_cast<float>(rng.next_gaussian());
    if (spatial) {
      std::vector<float> tmp(cfg.height * cfg.width);
      for (std::size_t c = 0; c < cfg.channels; ++c) {
        float* img = mu.data() + c * cfg.height * cfg.width;
        for (int pass = 0; pass < 3; ++pass) {
          for (std::size_t y = 0; y < cfg.height; ++y) {
            for (std::size_t x = 0; x < cfg.width; ++x) {
              float acc = 0.0f;
              int cnt = 0;
              for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                  const auto yy = static_cast<std::ptrdiff_t>(y) + dy;
                  const auto xx = static_cast<std::ptrdiff_t>(x) + dx;
                  if (yy < 0 || xx < 0 ||
                      yy >= static_cast<std::ptrdiff_t>(cfg.height) ||
                      xx >= static_cast<std::ptrdiff_t>(cfg.width)) {
                    continue;
                  }
                  acc += img[yy * static_cast<std::ptrdiff_t>(cfg.width) + xx];
                  ++cnt;
                }
              }
              tmp[y * cfg.width + x] = acc / static_cast<float>(cnt);
            }
          }
          std::copy(tmp.begin(), tmp.end(), img);
        }
      }
    }
    double norm2 = 0.0;
    for (auto v : mu) norm2 += double(v) * v;
    const double target =
        cfg.class_sep * std::sqrt(double(cfg.input_dim)) / 6.0;
    const double scale = norm2 > 0 ? target / std::sqrt(norm2) : 0.0;
    for (auto& v : mu) v = static_cast<float>(double(v) * scale);
  }

  ds.train_.reserve(cfg.num_train);
  for (std::size_t i = 0; i < cfg.num_train; ++i) {
    const int label = static_cast<int>(rng.next_below(cfg.num_classes));
    ds.train_.push_back(draw_example(means, label, cfg.noise, rng));
  }
  ds.test_.reserve(cfg.num_test);
  for (std::size_t i = 0; i < cfg.num_test; ++i) {
    const int label = static_cast<int>(rng.next_below(cfg.num_classes));
    ds.test_.push_back(draw_example(means, label, cfg.noise, rng));
  }
  return ds;
}

SyntheticDataset SyntheticDataset::mnist_like(std::size_t train,
                                              std::size_t test,
                                              std::uint64_t seed) {
  return gaussian_mixture({.input_dim = 28 * 28,
                           .num_classes = 10,
                           .num_train = train,
                           .num_test = test,
                           .class_sep = 2.2,
                           .noise = 1.0,
                           .seed = seed,
                           .height = 28,
                           .width = 28,
                           .channels = 1});
}

SyntheticDataset SyntheticDataset::femnist_like(std::size_t train,
                                                std::size_t test,
                                                std::uint64_t seed) {
  return gaussian_mixture({.input_dim = 28 * 28,
                           .num_classes = 62,
                           .num_train = train,
                           .num_test = test,
                           .class_sep = 2.6,
                           .noise = 1.0,
                           .seed = seed,
                           .height = 28,
                           .width = 28,
                           .channels = 1});
}

SyntheticDataset SyntheticDataset::cifar10_like(std::size_t train,
                                                std::size_t test,
                                                std::uint64_t seed) {
  return gaussian_mixture({.input_dim = 32 * 32 * 3,
                           .num_classes = 10,
                           .num_train = train,
                           .num_test = test,
                           .class_sep = 2.2,
                           .noise = 1.0,
                           .seed = seed,
                           .height = 32,
                           .width = 32,
                           .channels = 3});
}

std::vector<std::vector<std::size_t>> SyntheticDataset::partition_iid(
    std::size_t num_users, std::uint64_t seed) const {
  lsa::require<lsa::ConfigError>(num_users >= 1, "partition: no users");
  std::vector<std::size_t> idx(train_.size());
  std::iota(idx.begin(), idx.end(), 0);
  lsa::common::Xoshiro256ss rng(seed);
  for (std::size_t i = 0; i + 1 < idx.size(); ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.next_below(idx.size() - i));
    std::swap(idx[i], idx[j]);
  }
  std::vector<std::vector<std::size_t>> parts(num_users);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    parts[i % num_users].push_back(idx[i]);
  }
  return parts;
}

std::vector<std::vector<std::size_t>> SyntheticDataset::partition_shards(
    std::size_t num_users, std::size_t shards_per_user,
    std::uint64_t seed) const {
  lsa::require<lsa::ConfigError>(num_users >= 1 && shards_per_user >= 1,
                                 "partition: bad shard config");
  // Sort by label, cut into num_users * shards_per_user shards, deal
  // shards_per_user to each user.
  std::vector<std::size_t> idx(train_.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return train_[a].label < train_[b].label;
  });
  const std::size_t num_shards = num_users * shards_per_user;
  std::vector<std::size_t> shard_order(num_shards);
  std::iota(shard_order.begin(), shard_order.end(), 0);
  lsa::common::Xoshiro256ss rng(seed);
  for (std::size_t i = 0; i + 1 < shard_order.size(); ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.next_below(shard_order.size() - i));
    std::swap(shard_order[i], shard_order[j]);
  }
  const std::size_t shard_len = idx.size() / num_shards;
  std::vector<std::vector<std::size_t>> parts(num_users);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t user = s / shards_per_user;
    const std::size_t shard = shard_order[s];
    const std::size_t begin = shard * shard_len;
    const std::size_t end =
        (shard + 1 == num_shards) ? idx.size() : begin + shard_len;
    for (std::size_t k = begin; k < end; ++k) parts[user].push_back(idx[k]);
  }
  return parts;
}

}  // namespace lsa::fl
