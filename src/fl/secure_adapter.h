// Bridges real-valued FL model vectors and the finite-field secure
// aggregation protocols: quantize -> mask/aggregate in F_q -> demap -> average
// (paper §4.1 "Masking and uploading" + App. F.3.2).
//
// Execution: the protocol round itself parallelizes through
// protocol.params().exec. When that policy carries a pool, the per-user
// quantization loop fans out too, with per-user sub-RNGs split off the
// caller's quantize_rng (the split is drawn serially, so results are
// deterministic for a fixed pool-or-not choice; the serial path is
// unchanged from the legacy behavior).
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "protocol/secure_aggregator.h"
#include "quant/quantizer.h"

namespace lsa::fl {

namespace detail {
/// Quantizes locals[i] -> field_inputs[i] for all users, serial or fanned
/// out over the protocol's ExecPolicy (see header comment for RNG split).
template <class F>
void quantize_all(const lsa::quant::Quantizer<F>& quant,
                  const std::vector<std::vector<double>>& locals,
                  lsa::common::Xoshiro256ss& quantize_rng,
                  const lsa::sys::ExecPolicy& pol,
                  std::vector<std::vector<typename F::rep>>& field_inputs) {
  const std::size_t n = locals.size();
  if (!pol.parallel()) {
    for (std::size_t i = 0; i < n; ++i) {
      field_inputs[i] = quant.quantize_vector(
          std::span<const double>(locals[i]), quantize_rng);
    }
    return;
  }
  std::vector<std::uint64_t> seeds(n);
  for (auto& s : seeds) s = quantize_rng.next_u64();
  pol.run(n, [&](std::size_t i) {
    lsa::common::Xoshiro256ss rng(seeds[i]);
    field_inputs[i] =
        quant.quantize_vector(std::span<const double>(locals[i]), rng);
  });
}
}  // namespace detail

/// Securely computes the *average* of the surviving users' real vectors via
/// one protocol round.
///   locals[i]:  user i's parameter (or update) vector, length d.
///   dropped[i]: worst-case dropout pattern for the round.
/// The per-user quantization uses c_l levels (paper finds c_l = 2^16 best).
template <class F>
[[nodiscard]] std::vector<double> secure_average(
    lsa::protocol::SecureAggregator<F>& protocol,
    const std::vector<std::vector<double>>& locals,
    const std::vector<bool>& dropped, std::uint64_t c_l,
    lsa::common::Xoshiro256ss& quantize_rng) {
  const std::size_t n = locals.size();
  lsa::require<lsa::ProtocolError>(n == protocol.params().num_users,
                                   "secure_average: user count mismatch");
  const std::size_t d = protocol.params().model_dim;
  lsa::quant::Quantizer<F> quant(c_l);

  std::vector<std::vector<typename F::rep>> field_inputs(n);
  for (std::size_t i = 0; i < n; ++i) {
    lsa::require<lsa::ProtocolError>(locals[i].size() == d,
                                     "secure_average: bad vector length");
  }
  detail::quantize_all<F>(quant, locals, quantize_rng,
                          protocol.params().exec, field_inputs);

  const auto agg = protocol.run_round(field_inputs, dropped);

  std::size_t survivors = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!dropped[i]) ++survivors;
  }
  lsa::require<lsa::ProtocolError>(survivors > 0,
                                   "secure_average: everyone dropped");
  std::vector<double> avg(d);
  quant.dequantize_vector_scaled(std::span<const typename F::rep>(agg),
                                 std::span<double>(avg),
                                 static_cast<double>(survivors));
  return avg;
}

/// Securely computes the *sample-weighted* average (paper Remark 3): user i
/// scales its vector by its sample count s_i before masking, so the server
/// recovers sum_i s_i x_i and divides by sum_i s_i — without ever learning
/// an individual weighted vector. Mask sharing needs no knowledge of the
/// weights.
template <class F>
[[nodiscard]] std::vector<double> secure_weighted_average(
    lsa::protocol::SecureAggregator<F>& protocol,
    const std::vector<std::vector<double>>& locals,
    const std::vector<std::uint64_t>& sample_counts,
    const std::vector<bool>& dropped, std::uint64_t c_l,
    lsa::common::Xoshiro256ss& quantize_rng) {
  const std::size_t n = locals.size();
  lsa::require<lsa::ProtocolError>(
      n == protocol.params().num_users && sample_counts.size() == n,
      "secure_weighted_average: size mismatch");
  const std::size_t d = protocol.params().model_dim;
  lsa::quant::Quantizer<F> quant(c_l);

  std::vector<std::vector<typename F::rep>> field_inputs(n);
  std::vector<double> scaled(d);
  for (std::size_t i = 0; i < n; ++i) {
    lsa::require<lsa::ProtocolError>(locals[i].size() == d,
                                     "secure_weighted_average: bad length");
    for (std::size_t k = 0; k < d; ++k) {
      scaled[k] = locals[i][k] * static_cast<double>(sample_counts[i]);
    }
    field_inputs[i] = quant.quantize_vector(std::span<const double>(scaled),
                                            quantize_rng);
  }

  const auto agg = protocol.run_round(field_inputs, dropped);

  std::uint64_t weight_sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!dropped[i]) weight_sum += sample_counts[i];
  }
  lsa::require<lsa::ProtocolError>(weight_sum > 0,
                                   "secure_weighted_average: zero weight");
  std::vector<double> avg(d);
  quant.dequantize_vector_scaled(std::span<const typename F::rep>(agg),
                                 std::span<double>(avg),
                                 static_cast<double>(weight_sum));
  return avg;
}

}  // namespace lsa::fl
