#include "core/session.h"

#include "common/error.h"
#include "common/rng.h"
#include "fl/secure_adapter.h"
#include "protocol/fastsecagg.h"
#include "protocol/lightsecagg.h"
#include "protocol/secagg.h"
#include "protocol/secagg_plus.h"
#include "protocol/zhao_sun.h"

namespace lsa {

const char* protocol_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kSecAgg:
      return "SecAgg";
    case ProtocolKind::kSecAggPlus:
      return "SecAgg+";
    case ProtocolKind::kLightSecAgg:
      return "LightSecAgg";
    case ProtocolKind::kFastSecAgg:
      return "FastSecAgg";
    case ProtocolKind::kZhaoSun:
      return "ZhaoSun-TTP";
  }
  return "?";
}

Session::Session(SessionConfig cfg) : cfg_(cfg) {
  protocol::Params p;
  p.num_users = cfg.num_users;
  p.privacy = cfg.privacy;
  p.dropout = cfg.dropout;
  p.target_survivors = cfg.target_survivors;
  p.model_dim = cfg.model_dim;
  p.validate_and_resolve();

  ledger_ = std::make_unique<net::Ledger>(cfg.num_users);
  quant_rng_ = std::make_unique<common::Xoshiro256ss>(cfg.seed ^ 0x9ull);
  switch (cfg.protocol) {
    case ProtocolKind::kSecAgg:
      protocol_ = std::make_unique<protocol::SecAgg<Field>>(p, cfg.seed,
                                                            ledger_.get());
      break;
    case ProtocolKind::kSecAggPlus:
      protocol_ = std::make_unique<protocol::SecAggPlus<Field>>(
          p, cfg.seed, ledger_.get(), cfg.graph_degree, cfg.graph_threshold);
      break;
    case ProtocolKind::kLightSecAgg:
      protocol_ = std::make_unique<protocol::LightSecAgg<Field>>(
          p, cfg.seed, ledger_.get());
      break;
    case ProtocolKind::kFastSecAgg:
      protocol_ = std::make_unique<protocol::FastSecAgg<Field>>(
          p, cfg.seed, ledger_.get());
      break;
    case ProtocolKind::kZhaoSun:
      protocol_ =
          std::make_unique<protocol::ZhaoSunOneShot<Field>>(p, cfg.seed);
      break;
  }
}

Session::~Session() = default;

std::vector<double> Session::aggregate_average(
    const std::vector<std::vector<double>>& locals,
    const std::vector<bool>& dropped) {
  auto avg = fl::secure_average<Field>(*protocol_, locals, dropped, cfg_.c_l,
                                       *quant_rng_);
  ++rounds_;
  return avg;
}

std::vector<Session::Field::rep> Session::aggregate_field(
    const std::vector<std::vector<Field::rep>>& inputs,
    const std::vector<bool>& dropped) {
  auto out = protocol_->run_round(inputs, dropped);
  ++rounds_;
  return out;
}

net::RoundBreakdown Session::estimate_round_time(
    const net::CostModel& cost, net::BandwidthProfile bw, double d_real,
    double train_seconds, net::RoundSimulator::Options opts) const {
  require<ConfigError>(rounds_ > 0,
                       "estimate_round_time: run at least one round first");
  net::RoundSimulator sim(cost, bw, opts);
  net::RoundBreakdown rb = sim.simulate(
      *ledger_, d_real / static_cast<double>(cfg_.model_dim), train_seconds);
  // The ledger accumulates across rounds; report the per-round average.
  // (Each round contributes identical traffic shape, so the average equals
  // a single round's breakdown.)
  if (rounds_ > 1) {
    const double inv = 1.0 / static_cast<double>(rounds_);
    rb.offline *= inv;
    rb.upload *= inv;
    rb.recovery *= inv;
  }
  rb.training = train_seconds;
  return rb;
}

void Session::reset_ledger() {
  ledger_->reset();
  rounds_ = 0;
}

}  // namespace lsa
