// Public entry point of the library: a secure-aggregation session.
//
// A Session owns one protocol instance (SecAgg, SecAgg+ or LightSecAgg), a
// traffic ledger, and the quantization bridge — everything an FL system
// needs to replace its plaintext averaging with secure aggregation:
//
//   lsa::SessionConfig cfg;
//   cfg.protocol = lsa::ProtocolKind::kLightSecAgg;
//   cfg.num_users = 100; cfg.privacy = 50; cfg.dropout = 30;
//   cfg.model_dim = model.dim();
//   lsa::Session session(cfg);
//   auto avg = session.aggregate_average(local_models, dropped);
//
// The ledger accumulates message/compute volumes across rounds, which
// estimate_round_time() turns into the paper's per-phase wall-time breakdown
// under any bandwidth profile.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "field/fp.h"
#include "net/bandwidth.h"
#include "net/cost_model.h"
#include "net/ledger.h"
#include "common/rng.h"
#include "net/round_sim.h"
#include "protocol/secure_aggregator.h"

namespace lsa {

enum class ProtocolKind {
  kSecAgg,       ///< Bonawitz et al. 2017 baseline
  kSecAggPlus,   ///< Bell et al. 2020 baseline
  kLightSecAgg,  ///< this paper
  kFastSecAgg,   ///< Kadhe et al. 2020 (ramp-shares the model; related work)
  kZhaoSun,      ///< Zhao & Sun 2021 (TTP one-shot; App. C comparison,
                 ///< small N only — setup is exponential by design)
};

[[nodiscard]] const char* protocol_name(ProtocolKind kind);

struct SessionConfig {
  ProtocolKind protocol = ProtocolKind::kLightSecAgg;
  std::size_t num_users = 0;         ///< N
  std::size_t privacy = 0;           ///< T
  std::size_t dropout = 0;           ///< D
  std::size_t target_survivors = 0;  ///< U (0 = N - D; LightSecAgg only)
  std::size_t model_dim = 0;         ///< d
  std::uint64_t c_l = 1u << 16;      ///< quantization levels
  std::uint64_t seed = 1;
  /// SecAgg+ only: graph degree and in-neighborhood Shamir threshold
  /// (0 = defaults: ~3 log2 N and degree/3).
  std::size_t graph_degree = 0;
  std::size_t graph_threshold = 0;
};

class Session {
 public:
  using Field = lsa::field::Fp32;

  explicit Session(SessionConfig cfg);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Securely averages the surviving users' real-valued vectors
  /// (quantize -> one protocol round -> demap -> divide by |U1|).
  [[nodiscard]] std::vector<double> aggregate_average(
      const std::vector<std::vector<double>>& locals,
      const std::vector<bool>& dropped);

  /// Securely sums field vectors directly (no quantization).
  [[nodiscard]] std::vector<Field::rep> aggregate_field(
      const std::vector<std::vector<Field::rep>>& inputs,
      const std::vector<bool>& dropped);

  [[nodiscard]] const SessionConfig& config() const { return cfg_; }
  [[nodiscard]] const lsa::net::Ledger& ledger() const { return *ledger_; }
  [[nodiscard]] lsa::protocol::SecureAggregator<Field>& protocol() {
    return *protocol_;
  }
  [[nodiscard]] std::size_t rounds_completed() const { return rounds_; }

  /// Per-phase wall-time estimate of the *average* round so far, at model
  /// scale d_real (ledger entries that scale with d are extrapolated by
  /// d_real / model_dim) and a given local-training cost.
  [[nodiscard]] lsa::net::RoundBreakdown estimate_round_time(
      const lsa::net::CostModel& cost, lsa::net::BandwidthProfile bw,
      double d_real, double train_seconds,
      lsa::net::RoundSimulator::Options opts = {}) const;

  void reset_ledger();

 private:
  SessionConfig cfg_;
  std::unique_ptr<lsa::net::Ledger> ledger_;
  std::unique_ptr<lsa::protocol::SecureAggregator<Field>> protocol_;
  std::unique_ptr<lsa::common::Xoshiro256ss> quant_rng_;
  std::size_t rounds_ = 0;
};

}  // namespace lsa
