// lsa_serverd: standalone LightSecAgg aggregation-server daemon.
//
// Listens on a TCP or Unix-domain socket, hosts one or more sessions on a
// sharded socket hub, and serves full LightSecAgg rounds to external client
// processes (examples/lsa_client.cpp):
//
//   ./example_lsa_serverd --listen uds:///tmp/lsa.sock \
//       --users 4 --privacy 1 --dropout 1 --dim 1024 --rounds 2 \
//       --seed 42 --verify 1
//
// --verify replays every session through the serial runtime::Network
// reference with the same deterministic models (lsa_service_common.h) and
// the dropout pattern that actually happened (per-round responder bitmaps),
// and demands bit-identical aggregates — the socket plane must not change
// a single bit of the protocol's output. Verification assumes the
// delayed-not-dropped client behavior (drop AFTER upload, which is what
// lsa_client --drop-round does); a client that dies before uploading makes
// the reference diverge by construction.
//
// Exit codes: 0 ok; 2 aggregate mismatch or unrecoverable round;
// 3 timeout; 4 payload copies detected on the serving path; 64 usage.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "lsa_service_common.h"
#include "protocol/params.h"
#include "runtime/machines.h"
#include "server/remote_session.h"
#include "transport/socket/socket_transport.h"
#include "transport/stats.h"

namespace {

using lsa::server::RemoteSession;
using lsa::transport::socket::SocketAddr;
using lsa::transport::socket::SocketTransport;

int serve(int argc, char** argv) {
  lsa::examples::Flags flags(argc, argv);
  const std::string listen_url = flags.str("listen", "uds:///tmp/lsa.sock");
  lsa::protocol::Params params;
  params.num_users = flags.u64("users", 8);
  params.privacy = flags.u64("privacy", 1);
  params.dropout = flags.u64("dropout", 2);
  params.target_survivors = flags.u64("survivors", 0);
  params.model_dim = flags.u64("dim", 1024);
  // Steady-state cohort mode: clients share-distribute once per epoch.
  // Must match the clients' --persistent flag so the --verify reference
  // replays the same protocol variant.
  params.persistent_cohort = flags.boolean("persistent", false);
  const std::uint64_t rounds = flags.u64("rounds", 1);
  const std::uint64_t num_sessions = flags.u64("sessions", 1);
  const std::uint64_t seed = flags.u64("seed", 42);
  const bool verify = flags.boolean("verify", false);
  const std::uint64_t timeout_s = flags.u64("timeout-s", 60);
  flags.reject_unknown();

  const SocketAddr addr = SocketAddr::parse(listen_url);
  auto hub = SocketTransport::listen(addr);
  if (addr.kind == SocketAddr::Kind::kTcp) {
    std::printf("lsa_serverd: listening on tcp://%s:%u\n", addr.host.c_str(),
                static_cast<unsigned>(hub->tcp_port()));
  } else {
    std::printf("lsa_serverd: listening on %s\n", addr.to_string().c_str());
  }
  std::fflush(stdout);

  std::vector<std::unique_ptr<RemoteSession>> sessions;
  for (std::uint64_t s = 0; s < num_sessions; ++s) {
    lsa::server::RemoteSessionConfig cfg;
    cfg.params = params;
    cfg.rounds = rounds;
    sessions.push_back(std::make_unique<RemoteSession>(*hub, s, cfg));
  }
  params.validate_and_resolve();  // after sessions copied the raw config

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(timeout_s);
  auto all_done = [&] {
    for (const auto& s : sessions) {
      if (!s->done()) return false;
    }
    return true;
  };
  while (!all_done()) {
    try {
      hub->poll(50);
    } catch (const lsa::ProtocolError& e) {
      std::fprintf(stderr, "lsa_serverd: %s\n", e.what());
      return 2;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "lsa_serverd: timed out waiting for rounds\n");
      return 3;
    }
  }
  // Give queued result broadcasts a moment to drain to the kernel before
  // the listener (and every connection) is torn down.
  const auto drain_deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(2);
  auto queued = [&] {
    std::size_t total = 0;
    for (std::uint64_t s = 0; s < num_sessions; ++s) {
      total += hub->queued_frames(s);
    }
    return total;
  };
  while (queued() > 0 &&
         std::chrono::steady_clock::now() < drain_deadline) {
    hub->poll(10);
  }

  const auto& st = hub->stats();
  std::printf(
      "lsa_serverd: done — %llu delivered, %llu relayed, %llu dropped, "
      "%llu accepts, %llu disconnects, %llu revives\n",
      static_cast<unsigned long long>(st.frames_delivered),
      static_cast<unsigned long long>(st.frames_relayed),
      static_cast<unsigned long long>(st.frames_dropped),
      static_cast<unsigned long long>(st.accepts),
      static_cast<unsigned long long>(st.disconnects),
      static_cast<unsigned long long>(st.revives));

  // The serving path must be copy-free: frames are built once from arena
  // rows and relayed/broadcast by refcount. Snapshot BEFORE the verify
  // drive (the reference Network runs on the copying legacy Router).
  const std::uint64_t serve_copies =
      lsa::transport::snapshot().payload_copies;
  if (serve_copies != 0) {
    std::fprintf(stderr,
                 "lsa_serverd: %llu payload bytes copied on the serving "
                 "path (expected 0)\n",
                 static_cast<unsigned long long>(serve_copies));
    return 4;
  }

  if (verify) {
    for (std::uint64_t s = 0; s < num_sessions; ++s) {
      lsa::runtime::Network net(params, seed);
      for (std::uint64_t r = 0; r < rounds; ++r) {
        // The reference's crashes persist across rounds; this round's
        // dropout pattern is exactly the socket run's non-responders.
        std::vector<std::size_t> crashed;
        const auto& responded = sessions[s]->responders(r);
        for (std::uint32_t u = 0; u < params.num_users; ++u) {
          net.router().revive(u);
          if (responded[u] == 0) crashed.push_back(u);
        }
        std::vector<std::vector<lsa::field::Fp32::rep>> models;
        for (std::uint32_t u = 0; u < params.num_users; ++u) {
          models.push_back(lsa::examples::service_model(seed, u, r,
                                                        params.model_dim));
        }
        const auto want = net.run_round(r, models, crashed);
        const auto& got = sessions[s]->aggregates().at(r);
        if (want != got) {
          std::fprintf(stderr,
                       "lsa_serverd: session %llu round %llu aggregate "
                       "MISMATCH vs serial reference\n",
                       static_cast<unsigned long long>(s),
                       static_cast<unsigned long long>(r));
          return 2;
        }
        std::printf("lsa_serverd: session %llu round %llu verified "
                    "bit-identical (%zu survivors responded)\n",
                    static_cast<unsigned long long>(s),
                    static_cast<unsigned long long>(r),
                    params.num_users - crashed.size());
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return serve(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lsa_serverd: fatal: %s\n", e.what());
    return 1;
  }
}
