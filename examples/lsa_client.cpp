// lsa_client: one LightSecAgg user device as an external process.
//
// Connects to lsa_serverd over TCP or UDS, binds to (--session, --user)
// with the transport handshake, and runs --rounds full protocol rounds
// with deterministic models shared with the daemon's --verify mode:
//
//   ./example_lsa_client --connect uds:///tmp/lsa.sock --session 0 \
//       --user 3 --users 4 --privacy 1 --dropout 1 --dim 1024 \
//       --rounds 2 --seed 42
//
// --drop-round R exercises the crash/revive mapping: the client uploads
// its round-R masked model, flushes, and drops the connection — the
// delayed-not-dropped case (its model is still aggregated; it just never
// answers the recovery request). It reconnects at the start of the next
// round and keeps going.
//
// Exit codes: 0 ok; 1 fatal; 3 timeout / hub gone;
// 4 payload copies detected on the send path; 64 usage.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "field/simd/simd_policy.h"
#include "lsa_service_common.h"
#include "protocol/params.h"
#include "runtime/machines.h"
#include "server/remote_session.h"
#include "transport/socket/socket_transport.h"
#include "transport/stats.h"

namespace {

using lsa::transport::socket::Inbound;
using lsa::transport::socket::SocketAddr;
using lsa::transport::socket::SocketTransport;

int run(int argc, char** argv) {
  lsa::examples::Flags flags(argc, argv);
  const std::string connect_url = flags.str("connect", "uds:///tmp/lsa.sock");
  const std::uint64_t session = flags.u64("session", 0);
  const auto user = static_cast<std::uint32_t>(flags.u64("user", 0));
  lsa::protocol::Params params;
  params.num_users = flags.u64("users", 8);
  params.privacy = flags.u64("privacy", 1);
  params.dropout = flags.u64("dropout", 2);
  params.target_survivors = flags.u64("survivors", 0);
  params.model_dim = flags.u64("dim", 1024);
  // Steady-state cohort mode: offline encode + share distribution happen
  // once (epoch 0); rounds 1+ are masked-upload only. Pass the same value
  // to lsa_serverd so its --verify reference replays the same variant.
  params.persistent_cohort = flags.boolean("persistent", false);
  const std::uint64_t rounds = flags.u64("rounds", 1);
  const std::uint64_t seed = flags.u64("seed", 42);
  const std::uint64_t drop_round = flags.u64("drop-round", ~0ull);
  const std::uint64_t timeout_s = flags.u64("timeout-s", 60);
  flags.reject_unknown();
  params.validate_and_resolve();

  const SocketAddr addr = SocketAddr::parse(connect_url);
  auto transport = SocketTransport::connect(
      addr, session, user, static_cast<std::uint32_t>(params.num_users));
  lsa::runtime::UserDevice dev(user, params, seed, *transport);

  // All inbound protocol frames feed the device machine; the sink also
  // tracks which round's aggregate has landed so the main loop can block
  // on "my result for round r is here".
  std::int64_t result_round = -1;
  transport->set_sink([&](const Inbound& in) {
    // A dropped round's recovery request can still reach us: the hub
    // parks the survivor bitmap while we are down and flushes it on
    // reconnect. We abandoned that round, so skip it. And decline (not
    // crash on) any recovery request we cannot satisfy: shares are only
    // ever missing when our link broke mid-round (a close eats frames in
    // flight), and the daemon never waits on a user whose link broke
    // mid-round — crash semantics, not an error.
    if (in.view.type == lsa::runtime::MsgType::kSurvivorSet) {
      if (in.view.round == drop_round) return;
      try {
        dev.handle_view(in.view);
      } catch (const lsa::ProtocolError&) {
      }
      return;
    }
    dev.handle_view(in.view);
    if (in.view.type == lsa::runtime::MsgType::kAggregateResult) {
      result_round = static_cast<std::int64_t>(in.view.round);
    }
  });

  const lsa::field::simd::ScopedSimdPolicy simd_guard(params.simd);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    if (!transport->connected()) {
      transport->reconnect();  // revive after a --drop-round disconnect
    }
    const auto model =
        lsa::examples::service_model(seed, user, r, params.model_dim);
    dev.start_round(r, model);
    if (r == drop_round) {
      // Delayed, not dropped: the upload is flushed out before the
      // connection dies, so the aggregate still includes this user.
      transport->flush_pending(static_cast<int>(timeout_s) * 1000);
      transport->disconnect();
      std::printf("lsa_client %u: dropped after round %llu upload\n", user,
                  static_cast<unsigned long long>(r));
      continue;
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(timeout_s);
    while (result_round < static_cast<std::int64_t>(r)) {
      transport->poll(20);
      // Re-check the result before the connection: the hub may broadcast
      // the aggregate and close in the same poll (daemon shutdown), and a
      // result that landed with the EOF still counts.
      if (result_round >= static_cast<std::int64_t>(r)) break;
      if (!transport->connected()) {
        std::fprintf(stderr, "lsa_client %u: hub closed the connection\n",
                     user);
        return 3;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        std::fprintf(stderr,
                     "lsa_client %u: timed out waiting for round %llu\n",
                     user, static_cast<unsigned long long>(r));
        return 3;
      }
    }
  }

  // The client send path frames straight from the device's encode arena:
  // any payload copy is a regression in the zero-copy contract.
  const std::uint64_t copies = lsa::transport::snapshot().payload_copies;
  if (copies != 0) {
    std::fprintf(stderr,
                 "lsa_client %u: %llu payload bytes copied (expected 0)\n",
                 user, static_cast<unsigned long long>(copies));
    return 4;
  }
  std::printf("lsa_client %u: completed %llu rounds (last result round "
              "%lld)\n",
              user, static_cast<unsigned long long>(rounds),
              static_cast<long long>(result_round));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lsa_client: fatal: %s\n", e.what());
    return 1;
  }
}
