// Asynchronous LightSecAgg in the distributed runtime (paper §4.2 / App. F
// over the wire-format router of §6) — the system-shaped counterpart of
// examples/async_training.cpp.
//
// Eight devices submit updates born at *different* global rounds; the
// server buffers K = 4, broadcasts the (user, timestamp, weight) manifest,
// and every reachable device answers with one weighted combination of the
// timestamped mask shares it holds. One device even crashes after its
// upload — its update still lands in the aggregate, staleness-discounted,
// without the server ever seeing it unmasked.
#include <cstdio>

#include "common/rng.h"
#include "field/random_field.h"
#include "quant/staleness.h"
#include "runtime/async_machines.h"

int main() {
  using Net = lsa::runtime::AsyncNetwork;
  using rep = Net::rep;

  lsa::protocol::Params params;
  params.num_users = 8;
  params.privacy = 2;
  params.dropout = 2;
  params.model_dim = 8;
  lsa::quant::StalenessPolicy poly{lsa::quant::StalenessKind::kPolynomial,
                                   1.0};
  const std::uint64_t c_g = 1u << 6;
  Net net(params, /*buffer_k=*/4, poly, c_g, /*seed=*/77);

  // Four updates arrive with staleness 0, 1, 3 and 6 at round `now` = 9.
  const std::uint64_t now = 9;
  lsa::common::Xoshiro256ss rng(78);
  std::vector<Net::Arrival> arrivals;
  for (const auto& [user, born] :
       std::vector<std::pair<std::size_t, std::uint64_t>>{
           {0, 9}, {3, 8}, {5, 6}, {6, 3}}) {
    arrivals.push_back(
        {user, born,
         lsa::field::uniform_vector<Net::Fp>(params.model_dim, rng)});
  }

  std::printf("buffered updates (aggregated at round %llu):\n",
              static_cast<unsigned long long>(now));
  for (const auto& a : arrivals) {
    const auto tau = now - a.born_round;
    std::printf(
        "  user %zu  born round %llu  staleness %llu  weight s_cg = %llu/64\n",
        a.user, static_cast<unsigned long long>(a.born_round),
        static_cast<unsigned long long>(tau),
        static_cast<unsigned long long>(
            lsa::quant::quantized_staleness_weight(poly, tau, c_g)));
  }

  // User 6 (the stalest contributor) crashes right after its upload.
  const auto out = net.run_cycle(now, arrivals, /*crash_before_recovery=*/{6});

  std::vector<rep> expected(params.model_dim, Net::Fp::zero);
  for (const auto& a : arrivals) {
    const auto w = lsa::quant::quantized_staleness_weight(
        poly, now - a.born_round, c_g);
    lsa::field::axpy_inplace<Net::Fp>(std::span<rep>(expected),
                                      Net::Fp::from_u64(w),
                                      std::span<const rep>(a.update));
  }

  std::printf("\nweighted aggregate recovered: %s (weight sum %llu/64)\n",
              out.weighted_sum == expected ? "EXACT" : "MISMATCH",
              static_cast<unsigned long long>(out.weight_sum));
  std::printf(
      "\nWhat happened on the wire: timestamped encoded-mask shares were\n"
      "exchanged at submission time; the server's manifest told each of the\n"
      "7 reachable devices which (user, round) shares to combine with which\n"
      "public weights; one-shot decoding removed the weighted mask sum —\n"
      "including crashed user 6's mask, reconstructed without user 6. This\n"
      "is the mask-coding commutativity that SecAgg/SecAgg+ lack (Remark 1).\n");
  return 0;
}
