// Quickstart: securely average 8 users' model vectors with LightSecAgg.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Shows the core API in ~30 lines: configure a session, hand it the users'
// real-valued vectors and the round's dropout pattern, get back the average
// of the survivors — with the server never seeing an individual vector.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/session.h"

int main() {
  // 8 users; tolerate any 2 colluding with the server (T = 2) and any 2
  // dropouts (D = 2). U defaults to N - D = 6 surviving responders.
  lsa::SessionConfig cfg;
  cfg.protocol = lsa::ProtocolKind::kLightSecAgg;
  cfg.num_users = 8;
  cfg.privacy = 2;
  cfg.dropout = 2;
  cfg.model_dim = 16;
  lsa::Session session(cfg);

  // Each user's "local model" — here random values around i.
  lsa::common::Xoshiro256ss rng(7);
  std::vector<std::vector<double>> locals(cfg.num_users);
  for (std::size_t i = 0; i < cfg.num_users; ++i) {
    locals[i].resize(cfg.model_dim);
    for (auto& v : locals[i]) {
      v = static_cast<double>(i) + 0.1 * rng.next_gaussian();
    }
  }

  // Users 3 and 5 drop mid-round (after uploading their masked models —
  // the worst case; the protocol still recovers in one shot).
  std::vector<bool> dropped(cfg.num_users, false);
  dropped[3] = dropped[5] = true;

  const auto avg = session.aggregate_average(locals, dropped);

  std::printf("securely aggregated average of 6 surviving users:\n  ");
  for (double v : avg) std::printf("%.3f ", v);
  std::printf("\n(expected ~%.3f: the mean of user ids 0,1,2,4,6,7)\n",
              (0 + 1 + 2 + 4 + 6 + 7) / 6.0);

  // The ledger shows what crossed the network.
  const auto& ledger = session.ledger();
  std::printf(
      "round traffic: offline %llu elems, upload %llu elems, recovery %llu "
      "elems\n",
      static_cast<unsigned long long>(
          ledger.total_user_sent_elems(lsa::net::Phase::kOffline, true)),
      static_cast<unsigned long long>(
          ledger.total_user_sent_elems(lsa::net::Phase::kUpload, true)),
      static_cast<unsigned long long>(
          ledger.total_user_sent_elems(lsa::net::Phase::kRecovery, true)));
  return 0;
}
