// Dropout-resiliency stress test: push LightSecAgg to its guarantee
// boundary. With parameters (N, T, U) the protocol survives any pattern of
// up to N - U dropouts and fails *loudly* (typed ProtocolError, never a
// wrong answer) one dropout past the boundary — Theorem 1 in executable
// form.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/session.h"
#include "field/random_field.h"

int main() {
  constexpr std::size_t kUsers = 12;
  constexpr std::size_t kPrivacy = 4;
  constexpr std::size_t kTargetU = 6;  // survive down to 6 responders

  lsa::common::Xoshiro256ss rng(41);
  std::vector<std::vector<lsa::Session::Field::rep>> inputs(kUsers);
  for (auto& v : inputs) {
    v = lsa::field::uniform_vector<lsa::Session::Field>(32, rng);
  }

  std::printf("N = %zu users, T = %zu privacy, U = %zu  =>  tolerates D <= "
              "%zu dropouts\n\n",
              kUsers, kPrivacy, kTargetU, kUsers - kTargetU);
  std::printf("%-10s %-44s\n", "dropouts", "result");
  for (std::size_t drops = 0; drops <= kUsers - kTargetU + 1; ++drops) {
    lsa::SessionConfig cfg;
    cfg.protocol = lsa::ProtocolKind::kLightSecAgg;
    cfg.num_users = kUsers;
    cfg.privacy = kPrivacy;
    cfg.dropout = kUsers - kTargetU;
    cfg.target_survivors = kTargetU;
    cfg.model_dim = 32;
    cfg.seed = 42;
    lsa::Session session(cfg);

    std::vector<bool> dropped(kUsers, false);
    for (std::size_t i = 0; i < drops; ++i) dropped[i] = true;

    // Reference sum of survivors.
    std::vector<lsa::Session::Field::rep> expected(32, 0);
    for (std::size_t i = 0; i < kUsers; ++i) {
      if (dropped[i]) continue;
      for (std::size_t k = 0; k < 32; ++k) {
        expected[k] = lsa::Session::Field::add(expected[k], inputs[i][k]);
      }
    }

    try {
      const auto agg = session.aggregate_field(inputs, dropped);
      std::printf("%-10zu recovered %s\n", drops,
                  agg == expected ? "EXACT aggregate of survivors"
                                  : "WRONG AGGREGATE (bug!)");
    } catch (const lsa::ProtocolError& e) {
      std::printf("%-10zu refused: %s\n", drops, e.what());
    }
  }
  std::printf(
      "\nNote the failure mode: past the guarantee the protocol throws — it "
      "never\nsilently returns a corrupted aggregate.\n");
  return 0;
}
