// Compare all three protocols on the same aggregation task and predict
// full-scale round times — the decision a practitioner deploying secure
// aggregation actually faces. Uses the public Session API, plus the decode
// telemetry of the LightSecAgg codec to show which decode kernel kAuto
// picked and how its cost split between plan setup and streaming.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/session.h"
#include "protocol/lightsecagg.h"

namespace {

lsa::SessionConfig base_config(lsa::ProtocolKind kind) {
  lsa::SessionConfig cfg;
  cfg.protocol = kind;
  cfg.num_users = 40;
  cfg.privacy = 20;   // tolerate up to half the users colluding
  cfg.dropout = 8;    // tolerate 20% dropouts
  cfg.model_dim = 256;  // functional dimension; timing extrapolates below
  cfg.seed = 31;
  return cfg;
}

}  // namespace

int main() {
  // One real aggregation round per protocol over the same inputs.
  lsa::common::Xoshiro256ss rng(32);
  std::vector<std::vector<double>> locals(40);
  for (auto& v : locals) {
    v.resize(256);
    for (auto& x : v) x = rng.next_gaussian();
  }
  std::vector<bool> dropped(40, false);
  for (std::size_t i = 0; i < 8; ++i) dropped[5 * i] = true;

  const auto cost = lsa::net::CostModel::paper_stack();
  const auto bw = lsa::net::BandwidthProfile::measured_320mbps();

  std::printf(
      "%-12s | %14s %14s | %10s %10s %10s %10s\n", "Protocol",
      "offline elems", "recovery elems", "offline_s", "upload_s",
      "recovery_s", "total_s");
  for (auto kind : {lsa::ProtocolKind::kSecAgg,
                    lsa::ProtocolKind::kSecAggPlus,
                    lsa::ProtocolKind::kLightSecAgg}) {
    lsa::Session session(base_config(kind));
    const auto avg = session.aggregate_average(locals, dropped);
    (void)avg;

    const auto& ledger = session.ledger();
    const auto offline_elems =
        ledger.total_user_sent_elems(lsa::net::Phase::kOffline, true) +
        ledger.total_user_sent_elems(lsa::net::Phase::kOffline, false);
    const auto recovery_elems =
        ledger.total_user_sent_elems(lsa::net::Phase::kRecovery, true) +
        ledger.total_user_sent_elems(lsa::net::Phase::kRecovery, false);

    // Predict one round at MobileNetV3 scale (d = 3.1M) with 30 s training.
    const auto rb = session.estimate_round_time(cost, bw, 3111462.0, 30.0);
    std::printf("%-12s | %14llu %14llu | %10.1f %10.1f %10.1f %10.1f\n",
                lsa::protocol_name(kind),
                static_cast<unsigned long long>(offline_elems),
                static_cast<unsigned long long>(recovery_elems), rb.offline,
                rb.upload, rb.recovery, rb.total_overlapped());

    // Decode-plane telemetry: which kernel the auto-selector resolved to
    // and the plan-setup vs streaming split (the setup amortizes across
    // rounds with the same survivor set — see coding/decode_plan.h).
    if (auto* lp = dynamic_cast<lsa::protocol::LightSecAgg<lsa::Session::Field>*>(
            &session.protocol())) {
      const auto st = lp->codec().last_decode_stats();
      std::printf(
          "%-12s   decode: %s -> %s, plan %s, setup %.3f ms + stream %.3f "
          "ms\n",
          "", lsa::coding::to_string(st.requested),
          lsa::coding::to_string(st.used),
          st.plan_reused ? "reused" : "built", st.setup_s * 1e3,
          st.stream_s * 1e3);
    }
  }
  std::printf(
      "\nLightSecAgg spends more offline (encoded mask shares) and far less "
      "in\nrecovery — the design trade that §5.2 quantifies and Table 4 "
      "measures.\nThe decode line shows the strategy kAuto picked and the "
      "plan-setup cost\nthat repeated rounds with the same survivor set "
      "amortize away.\n");
  return 0;
}
