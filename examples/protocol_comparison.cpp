// Compare all three protocols on the same aggregation task and predict
// full-scale round times — the decision a practitioner deploying secure
// aggregation actually faces. Uses the public Session API, plus the decode
// telemetry of the LightSecAgg codec to show which decode kernel kAuto
// picked and how its cost split between plan setup and streaming.
//
// The second half demonstrates the unified session runtime: one sharded
// server::AggregationServer drives sync cohorts (whole rounds) and async
// buffered cohorts (staleness-weighted buffer cycles) in ONE drive, then
// prints the process-level stats report a fleet dashboard would scrape —
// per-session rounds/cycles, frame counts, the one-shot decode telemetry
// (survivor-set plan-cache hits, setup-vs-stream split), and the
// pipelined-round telemetry (rounds in flight, hidden offline time,
// stalls) for the depth-2 cohort.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/session.h"
#include "field/random_field.h"
#include "protocol/lightsecagg.h"
#include "server/aggregation_server.h"
#include "sys/thread_pool.h"

namespace {

lsa::SessionConfig base_config(lsa::ProtocolKind kind) {
  lsa::SessionConfig cfg;
  cfg.protocol = kind;
  cfg.num_users = 40;
  cfg.privacy = 20;   // tolerate up to half the users colluding
  cfg.dropout = 8;    // tolerate 20% dropouts
  cfg.model_dim = 256;  // functional dimension; timing extrapolates below
  cfg.seed = 31;
  return cfg;
}

}  // namespace

int main() {
  // One real aggregation round per protocol over the same inputs.
  lsa::common::Xoshiro256ss rng(32);
  std::vector<std::vector<double>> locals(40);
  for (auto& v : locals) {
    v.resize(256);
    for (auto& x : v) x = rng.next_gaussian();
  }
  std::vector<bool> dropped(40, false);
  for (std::size_t i = 0; i < 8; ++i) dropped[5 * i] = true;

  const auto cost = lsa::net::CostModel::paper_stack();
  const auto bw = lsa::net::BandwidthProfile::measured_320mbps();

  std::printf(
      "%-12s | %14s %14s | %10s %10s %10s %10s\n", "Protocol",
      "offline elems", "recovery elems", "offline_s", "upload_s",
      "recovery_s", "total_s");
  for (auto kind : {lsa::ProtocolKind::kSecAgg,
                    lsa::ProtocolKind::kSecAggPlus,
                    lsa::ProtocolKind::kLightSecAgg}) {
    lsa::Session session(base_config(kind));
    const auto avg = session.aggregate_average(locals, dropped);
    (void)avg;

    const auto& ledger = session.ledger();
    const auto offline_elems =
        ledger.total_user_sent_elems(lsa::net::Phase::kOffline, true) +
        ledger.total_user_sent_elems(lsa::net::Phase::kOffline, false);
    const auto recovery_elems =
        ledger.total_user_sent_elems(lsa::net::Phase::kRecovery, true) +
        ledger.total_user_sent_elems(lsa::net::Phase::kRecovery, false);

    // Predict one round at MobileNetV3 scale (d = 3.1M) with 30 s training.
    const auto rb = session.estimate_round_time(cost, bw, 3111462.0, 30.0);
    std::printf("%-12s | %14llu %14llu | %10.1f %10.1f %10.1f %10.1f\n",
                lsa::protocol_name(kind),
                static_cast<unsigned long long>(offline_elems),
                static_cast<unsigned long long>(recovery_elems), rb.offline,
                rb.upload, rb.recovery, rb.total_overlapped());

    // Decode-plane telemetry: which kernel the auto-selector resolved to
    // and the plan-setup vs streaming split (the setup amortizes across
    // rounds with the same survivor set — see coding/decode_plan.h).
    if (auto* lp = dynamic_cast<lsa::protocol::LightSecAgg<lsa::Session::Field>*>(
            &session.protocol())) {
      const auto st = lp->codec().last_decode_stats();
      std::printf(
          "%-12s   decode: %s -> %s, plan %s, setup %.3f ms + stream %.3f "
          "ms\n",
          "", lsa::coding::to_string(st.requested),
          lsa::coding::to_string(st.used),
          st.plan_reused ? "reused" : "built", st.setup_s * 1e3,
          st.stream_s * 1e3);
    }
  }
  std::printf(
      "\nLightSecAgg spends more offline (encoded mask shares) and far less "
      "in\nrecovery — the design trade that §5.2 quantifies and Table 4 "
      "measures.\nThe decode line shows the strategy kAuto picked and the "
      "plan-setup cost\nthat repeated rounds with the same survivor set "
      "amortize away.\n");

  // --- Mixed sync/async cohorts through the unified session runtime ------
  // Two sync cohorts (2 rounds each) and two async buffered cohorts (3
  // staleness-weighted buffer cycles each, K = 3, Poly(1)) share one
  // sharded server and one thread pool; a single run_rounds() drive pumps
  // them all concurrently.
  std::printf("\nMixed sync/async cohorts, one process, one drive:\n");
  {
    using rep = lsa::server::AggregationServer::rep;
    lsa::sys::ThreadPool pool(4);
    lsa::server::AggregationServer server(&pool);

    lsa::protocol::Params p;
    p.num_users = 12;
    p.privacy = 3;
    p.dropout = 3;
    p.target_survivors = 9;
    p.model_dim = 128;
    p.exec.pool = &pool;

    lsa::common::Xoshiro256ss mrng(7);
    std::vector<std::vector<rep>> models(p.num_users);
    for (auto& m : models) {
      m = lsa::field::uniform_vector<lsa::field::Fp32>(p.model_dim, mrng);
    }

    std::vector<lsa::server::AggregationServer::RoundWork> works;
    for (std::uint64_t s = 0; s < 2; ++s) {
      auto pp = p;
      // Cohort 0 runs depth-2 pipelined: round 1's offline mask encode
      // proceeds under round 0's fan-in + decode (bit-identical either
      // way); cohort 1 stays on the depth-1 serial reference.
      pp.pipeline = s == 0 ? 2 : 1;
      const auto id = server.open_session(
          lsa::server::SessionConfig{.params = pp, .seed = 40 + s});
      works.push_back({id, 0, &models, {}});
      works.push_back({id, 1, &models, {1, 5}});  // dropout round
    }
    for (std::uint64_t s = 0; s < 2; ++s) {
      lsa::server::AsyncSessionConfig cfg;
      cfg.params = p;
      cfg.seed = 60 + s;
      cfg.buffer_k = 3;
      cfg.staleness = {lsa::quant::StalenessKind::kPolynomial, 1.0};
      cfg.c_g = 1u << 6;
      cfg.schedule = {.seed = 80 + s, .tau_max = 3};
      server.async_session(server.open_async_session(cfg))
          .enqueue_scheduled_cycles(3);
    }
    const auto results = server.run_rounds(works);
    (void)results;

    const auto ps = server.stats();
    std::printf("%-4s %-6s %6s %8s %8s %6s %6s %10s %10s %-12s\n", "id",
                "kind", "steps", "sent", "deliv", "built", "reused",
                "setup_ms", "stream_ms", "last kernel");
    for (const auto& s : ps.per_session) {
      std::printf("%-4llu %-6s %6llu %8llu %8llu %6llu %6llu %10.3f %10.3f "
                  "%-12s\n",
                  static_cast<unsigned long long>(s.id),
                  lsa::server::to_string(s.kind),
                  static_cast<unsigned long long>(s.steps),
                  static_cast<unsigned long long>(s.frames_sent),
                  static_cast<unsigned long long>(s.frames_delivered),
                  static_cast<unsigned long long>(s.decode_plan_builds),
                  static_cast<unsigned long long>(s.decode_plan_reuses),
                  s.decode_setup_s * 1e3, s.decode_stream_s * 1e3,
                  lsa::coding::to_string(s.last_decode_used));
    }
    for (const auto& s : ps.per_session) {
      if (s.rounds_in_flight < 2) continue;
      std::printf("     session %llu pipelined: %llu rounds in flight, "
                  "offline hidden %.3f of %.3f ms, %llu stall(s)\n",
                  static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.rounds_in_flight),
                  s.offline_hidden_s * 1e3, s.offline_stage_s * 1e3,
                  static_cast<unsigned long long>(s.pipeline_stalls));
    }
    std::printf("process: %llu sync rounds + %llu async cycles, %llu frames "
                "sent / %llu delivered,\n         decode plans built %llu / "
                "reused %llu, setup %.3f ms + stream %.3f ms\n",
                static_cast<unsigned long long>(ps.rounds_completed),
                static_cast<unsigned long long>(ps.cycles_completed),
                static_cast<unsigned long long>(ps.frames_sent),
                static_cast<unsigned long long>(ps.frames_delivered),
                static_cast<unsigned long long>(ps.decode_plan_builds),
                static_cast<unsigned long long>(ps.decode_plan_reuses),
                ps.decode_setup_s * 1e3, ps.decode_stream_s * 1e3);
    std::printf("         pipeline: max %llu rounds in flight, offline "
                "hidden %.3f ms, %llu stall(s)\n",
                static_cast<unsigned long long>(ps.max_rounds_in_flight),
                ps.offline_hidden_s * 1e3,
                static_cast<unsigned long long>(ps.pipeline_stalls));
    std::printf(
        "Async cycles combine shares minted in DIFFERENT rounds with public "
        "integer\nstaleness weights — the one-shot recovery that makes "
        "LightSecAgg buffered-\nasync-capable (App. F) while the sync "
        "cohorts round-robin beside them.\n");
  }
  return 0;
}
