// Byzantine-robust secure aggregation — the paper's §8 future-work
// direction, built from the pieces in src/robust/.
//
// 20 users train logistic regression on an MNIST-shaped dataset; users are
// partitioned into 5 groups, each running its own LightSecAgg instance, and
// the server combines the 5 group averages with a robust rule. Three of the
// users are Byzantine and submit garbage instead of their trained model.
//
// The run is repeated three ways:
//   1. honest cohort, grouped mean      — accuracy reference
//   2. attacked cohort, grouped mean    — poisoned (one corrupt group average
//                                         drags the global model away)
//   3. attacked cohort, grouped median  — the robust rule discards the
//                                         poisoned group; training recovers.
#include <cstdio>

#include "field/fp.h"
#include "fl/dataset.h"
#include "fl/fedavg.h"
#include "fl/model.h"
#include "robust/attacks.h"
#include "robust/grouped_secure.h"

namespace {

using F = lsa::field::Fp32;
namespace rb = lsa::robust;

/// Wraps the grouped aggregator so the Byzantine users' submissions are
/// corrupted *before* aggregation — the attacker controls its own upload,
/// nothing else (the honest-but-curious server stays honest).
lsa::fl::Aggregate attacked_callback(rb::GroupedSecureAggregator<F>& agg,
                                     const std::vector<bool>& byzantine,
                                     rb::AttackConfig atk) {
  return [&agg, &byzantine, atk](
             const std::vector<std::vector<double>>& locals,
             const std::vector<bool>& dropped) {
    lsa::common::Xoshiro256ss rng(atk.seed);
    auto poisoned = locals;
    for (std::size_t i = 0; i < poisoned.size(); ++i) {
      if (byzantine[i]) rb::apply_attack(poisoned[i], atk, rng);
    }
    return agg.aggregate(poisoned, dropped);
  };
}

double final_accuracy(const std::vector<lsa::fl::RoundRecord>& curve) {
  return curve.empty() ? 0.0 : 100.0 * curve.back().test_accuracy;
}

}  // namespace

int main() {
  using namespace lsa::fl;

  const std::size_t num_users = 20;
  const std::size_t num_groups = 5;
  auto data = SyntheticDataset::mnist_like(/*train=*/1600, /*test=*/400,
                                           /*seed=*/21);
  auto partitions = data.partition_iid(num_users, 22);

  FedAvgConfig cfg;
  cfg.rounds = 8;
  cfg.dropout_rate = 0.1;
  cfg.sgd = {.epochs = 2, .batch_size = 16, .lr = 0.1};
  cfg.seed = 23;

  // 3 Byzantine users, concentrated: they land in the same group, which is
  // the regime group-wise robustness handles cleanly.
  const auto byz = rb::byzantine_assignment(num_users, 3, num_groups,
                                            /*spread=*/false);
  // Sign-flip: each attacker submits -10x its honest model. (A constant-
  // vector attack would be argmax-invariant for softmax regression — it
  // shifts every class logit equally — so it cannot hurt accuracy here.)
  rb::AttackConfig atk;
  atk.kind = rb::Attack::kSignFlip;
  atk.scale = 10.0;

  rb::GroupedConfig gc;
  gc.num_users = num_users;
  gc.num_groups = num_groups;
  gc.model_dim = 7850;
  gc.seed = 24;

  std::printf("run                                  final accuracy\n");
  std::printf("-----------------------------------  --------------\n");

  {
    gc.rule = rb::Rule::kMean;
    rb::GroupedSecureAggregator<F> agg(gc);
    LogisticRegression model(784, 10, 25);
    const std::vector<bool> honest(num_users, false);
    auto curve = run_fedavg(model, data, partitions, cfg,
                            attacked_callback(agg, honest, {}));
    std::printf("%-37s %13.2f%%\n", "honest cohort, grouped mean",
                final_accuracy(curve));
  }
  {
    gc.rule = rb::Rule::kMean;
    rb::GroupedSecureAggregator<F> agg(gc);
    LogisticRegression model(784, 10, 25);
    auto curve = run_fedavg(model, data, partitions, cfg,
                            attacked_callback(agg, byz, atk));
    std::printf("%-37s %13.2f%%\n", "3 Byzantine users, grouped mean",
                final_accuracy(curve));
  }
  {
    gc.rule = rb::Rule::kCoordinateMedian;
    rb::GroupedSecureAggregator<F> agg(gc);
    LogisticRegression model(784, 10, 25);
    auto curve = run_fedavg(model, data, partitions, cfg,
                            attacked_callback(agg, byz, atk));
    std::printf("%-37s %13.2f%%\n", "3 Byzantine users, grouped median",
                final_accuracy(curve));
  }

  std::printf(
      "\nReading: the sign-flip attack wrecks the mean-aggregated run;"
      "\nthe coordinate-median across the 5 securely-aggregated group"
      "\naverages discards the poisoned group and restores accuracy, while"
      "\nevery individual update stays masked inside its group (T_g-privacy)."
      "\n");
  return 0;
}
