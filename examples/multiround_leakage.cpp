// Multi-round privacy leakage and its mitigation (So et al. 2021a, cited by
// the paper) — secure aggregation hides individual models *within* a round;
// this example shows what changing participation sets leak *across* rounds,
// and how batch-aligned participation closes the hole.
//
// Scenario: 8 users run LightSecAgg for several rounds while the server
// records who participated. With unrestricted participation, the classic
// difference attack isolates a dropout's model. With participation snapped
// to batches of 2, the observed row space can never contain an individual.
#include <cstdio>

#include "analysis/leakage.h"
#include "common/rng.h"
#include "core/session.h"
#include "field/random_field.h"

namespace {

constexpr std::size_t kUsers = 8;
constexpr std::size_t kDim = 16;

/// Runs one LightSecAgg round with the given participation and records it.
void run_round(lsa::Session& session, lsa::analysis::LeakageTracker& tracker,
               const std::vector<bool>& participates,
               lsa::common::Xoshiro256ss& rng) {
  using F = lsa::Session::Field;
  std::vector<std::vector<F::rep>> inputs(kUsers);
  for (auto& v : inputs) v = lsa::field::uniform_vector<F>(kDim, rng);
  std::vector<bool> dropped(kUsers);
  for (std::size_t i = 0; i < kUsers; ++i) dropped[i] = !participates[i];
  (void)session.aggregate_field(inputs, dropped);
  tracker.record_round(participates);
}

void report(const char* label,
            const lsa::analysis::LeakageTracker& tracker) {
  const auto leaked = tracker.isolated_users();
  std::printf("%-28s rounds=%zu rank=%zu isolated={", label,
              tracker.rounds_recorded(), tracker.rank());
  for (std::size_t k = 0; k < leaked.size(); ++k) {
    std::printf("%s%zu", k ? "," : "", leaked[k]);
  }
  std::printf("}\n");
}

}  // namespace

int main() {
  lsa::SessionConfig cfg;
  cfg.protocol = lsa::ProtocolKind::kLightSecAgg;
  cfg.num_users = kUsers;
  cfg.privacy = 2;
  cfg.dropout = 4;  // batch-aligning can drop two whole batches at once
  cfg.model_dim = kDim;
  cfg.seed = 51;
  lsa::common::Xoshiro256ss rng(52);

  std::printf("--- unrestricted participation -------------------------\n");
  {
    lsa::Session session(cfg);
    lsa::analysis::LeakageTracker tracker(kUsers);
    // Round 1: everyone. Round 2: user 3 drops out. Round 3: users 3,6 out.
    run_round(session, tracker,
              {true, true, true, true, true, true, true, true}, rng);
    report("after full round", tracker);
    run_round(session, tracker,
              {true, true, true, false, true, true, true, true}, rng);
    report("after user 3 drops", tracker);
    run_round(session, tracker,
              {true, true, true, false, true, true, false, true}, rng);
    report("after users 3,6 drop", tracker);
  }

  std::printf(
      "\n--- batch-aligned participation (batches of 2) ----------\n");
  {
    lsa::Session session(cfg);
    lsa::analysis::LeakageTracker tracker(kUsers);
    lsa::analysis::BatchPartition batches(kUsers, 2);
    // The same availability patterns, snapped to whole batches.
    for (const auto& avail : std::vector<std::vector<bool>>{
             {true, true, true, true, true, true, true, true},
             {true, true, true, false, true, true, true, true},
             {true, true, true, false, true, true, false, true}}) {
      run_round(session, tracker, batches.align(avail), rng);
    }
    report("after the same 3 rounds", tracker);
  }

  std::printf(
      "\nReading: unrestricted participation lets the server subtract\n"
      "round aggregates — user 3's model is isolated the moment it skips a\n"
      "round (and 6's after the third). Snapping participation to batches\n"
      "of two keeps the observed space spanned by batch sums: rank stays\n"
      "low and no individual is ever isolated, at the price of losing a\n"
      "whole batch when any member is unavailable (So et al. 2021a).\n");
  return 0;
}
