// Parameter planner — turning §7.2's "Impact of U" into a deployment tool.
//
// LightSecAgg has one free design parameter once N, the privacy target T
// and the dropout budget D are fixed: the number of survivors U the server
// waits for, anywhere in (T, N - D]. Larger U shrinks every encoded share
// (segment length d/(U-T)) but raises the decode workload per recovered
// symbol; the paper measures U = 0.7N as optimal for p <= 0.3 and is forced
// to U = N/2 + 1 at p = 0.5.
//
// This example sweeps U for a deployment's (N, p, bandwidth, model) and
// prints the predicted per-phase round time from the same cost model the
// table/figure benches use — the table an operator would consult before
// fixing U in a fleet config.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "field/fp.h"
#include "field/random_field.h"
#include "net/bandwidth.h"
#include "net/cost_model.h"
#include "net/round_sim.h"
#include "protocol/lightsecagg.h"

namespace {

using F = lsa::field::Fp32;

struct Prediction {
  std::size_t u = 0;
  lsa::net::RoundBreakdown rb;
  lsa::coding::MaskCodec<F>::DecodeStats decode;
};

Prediction predict(std::size_t n, std::size_t t, std::size_t u,
                   std::size_t d_real, double train_s,
                   const lsa::net::CostModel& cost,
                   const lsa::net::BandwidthProfile& bw) {
  // Functionally execute one round at a reduced dimension; the ledger
  // extrapolates the d-scaled costs to the real model size.
  const std::size_t d_sim = std::max<std::size_t>(u - t, 64);
  lsa::protocol::Params p;
  p.num_users = n;
  p.privacy = t;
  p.dropout = n - u;
  p.target_survivors = u;
  p.model_dim = d_sim;
  lsa::net::Ledger ledger(n);
  lsa::protocol::LightSecAgg<F> proto(p, 77, &ledger);

  lsa::common::Xoshiro256ss rng(78);
  std::vector<std::vector<F::rep>> inputs(n);
  for (auto& v : inputs) v = lsa::field::uniform_vector<F>(d_sim, rng);
  std::vector<bool> dropped(n, false);
  (void)proto.run_round(inputs, dropped);

  lsa::net::RoundSimulator::Options opts;
  opts.duplex_overlap = true;
  lsa::net::RoundSimulator sim(cost, bw, opts);
  Prediction out;
  out.u = u;
  out.rb = sim.simulate(ledger,
                        static_cast<double>(d_real) /
                            static_cast<double>(d_sim),
                        train_s);
  out.decode = proto.codec().last_decode_stats();
  return out;
}

}  // namespace

int main() {
  // Deployment under planning: 100 users, T = N/2 privacy, expecting up to
  // 30% dropouts, CNN-sized model on a 320 Mb/s uplink.
  const std::size_t n = 100;
  const std::size_t t = 50;
  const double p_drop = 0.3;
  const std::size_t d_real = 1206590;
  const double train_s = 22.8;

  const auto cost = lsa::net::CostModel::paper_stack();
  const auto bw = lsa::net::BandwidthProfile::measured_320mbps();
  const auto d_budget = static_cast<std::size_t>(p_drop * double(n));

  std::printf(
      "LightSecAgg parameter plan: N = %zu, T = %zu, dropout budget D = "
      "%zu\nmodel d = %zu, train = %.1fs, 320 Mb/s\n\n",
      n, t, d_budget, d_real, train_s);
  std::printf("%-6s %-10s | %9s %9s %9s %9s | %-11s %10s | %s\n", "U",
              "seg=d/(U-T)", "offline", "upload", "recovery", "total",
              "decode", "setup+strm", "note");

  std::vector<std::size_t> sweep;
  for (std::size_t u = t + 1; u < n - d_budget; u += 3) sweep.push_back(u);
  sweep.push_back(n - d_budget);  // always include the U = N - D endpoint

  Prediction best;
  double best_total = 1e300;
  for (const std::size_t u : sweep) {
    const auto pred = predict(n, t, u, d_real, train_s, cost, bw);
    const double total = pred.rb.total_overlapped();
    const bool better = total < best_total;
    if (better) {
      best = pred;
      best_total = total;
    }
    // The decode column shows what kAuto resolved to on the functional run
    // and the plan-setup vs streaming split (setup amortizes across rounds
    // with a stable survivor set).
    char split[32];
    std::snprintf(split, sizeof(split), "%.2f+%.2fms",
                  pred.decode.setup_s * 1e3, pred.decode.stream_s * 1e3);
    std::printf("%-6zu %-10zu | %9.1f %9.1f %9.1f %9.1f | %-11s %10s | %s\n",
                u, (d_real + (u - t) - 1) / (u - t), pred.rb.offline,
                pred.rb.upload, pred.rb.recovery, total,
                lsa::coding::to_string(pred.decode.used), split,
                u == t + 1 ? "min (U=T+1)" : "");
  }
  std::printf(
      "\nRecommended U = %zu (predicted %.1f s/round overlapped).\n"
      "Shape to expect (paper §7.2): small U blows up the share segments\n"
      "(offline + recovery cost ~ d/(U-T)); the optimum sits around 0.7N,\n"
      "and at p = 0.5 the feasible window collapses to U = N/2 + 1.\n",
      best.u, best_total);
  return 0;
}
