// Shared bits of the socket-service example pair (lsa_serverd / lsa_client).
//
// The crucial piece is service_model(): the deterministic per-(user, round)
// model both sides derive from the SAME --seed flag. The daemon's --verify
// mode replays the whole cohort through the serial runtime::Network
// reference with models from this generator, so the client processes and
// the in-process reference are guaranteed to aggregate the same inputs —
// any mismatch is a transport/protocol bug, never a data-generation one.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "crypto/prg.h"
#include "field/fp.h"
#include "field/random_field.h"

namespace lsa::examples {

/// The deterministic model user `user` trains in round `round`. Seeded
/// independently of the protocol's mask seeds (different domain constant),
/// so models and masks never correlate.
inline std::vector<lsa::field::Fp32::rep> service_model(
    std::uint64_t master_seed, std::uint32_t user, std::uint64_t round,
    std::size_t dim) {
  auto seed = lsa::crypto::derive_subseed(
      lsa::crypto::seed_from_u64(master_seed ^
                                 (0x5eedull + user * 0x9e3779b97f4a7c15ull)),
      round);
  lsa::crypto::Prg prg(seed);
  return lsa::field::uniform_vector<lsa::field::Fp32>(dim, prg);
}

/// Tiny --flag value parser: flags are "--name value" pairs, every flag
/// has a value, unknown flags are fatal (typos must not silently become
/// defaults in a service wrapper).
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; i += 2) {
      const std::string name = argv[i];
      if (name.rfind("--", 0) != 0) {
        fail("expected --flag, got '" + name + "'");
      }
      kv_.emplace_back(name.substr(2), argv[i + 1]);
    }
    if (argc >= 2 && (argc % 2) == 0) {
      fail("flag '" + std::string(argv[argc - 1]) + "' is missing a value");
    }
  }

  [[nodiscard]] std::string str(const std::string& name,
                                const std::string& fallback) {
    for (auto& [k, v] : kv_) {
      if (k == name) {
        used_.push_back(k);
        return v;
      }
    }
    return fallback;
  }

  [[nodiscard]] std::uint64_t u64(const std::string& name,
                                  std::uint64_t fallback) {
    const std::string v = str(name, "");
    if (v.empty()) return fallback;
    char* end = nullptr;
    const unsigned long long out = std::strtoull(v.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      fail("flag --" + name + " needs a number, got '" + v + "'");
    }
    return out;
  }

  [[nodiscard]] bool boolean(const std::string& name, bool fallback) {
    const std::string v = str(name, "");
    if (v.empty()) return fallback;
    if (v == "1" || v == "true" || v == "on") return true;
    if (v == "0" || v == "false" || v == "off") return false;
    fail("flag --" + name + " needs 0/1/true/false, got '" + v + "'");
    return fallback;  // unreachable
  }

  /// Call after all lookups: any flag never consumed is a typo.
  void reject_unknown() {
    for (auto& [k, v] : kv_) {
      bool seen = false;
      for (auto& u : used_) {
        if (u == k) seen = true;
      }
      if (!seen) fail("unknown flag --" + k);
    }
  }

 private:
  [[noreturn]] static void fail(const std::string& msg) {
    std::cerr << "error: " << msg << "\n";
    std::exit(64);  // EX_USAGE
  }

  std::vector<std::pair<std::string, std::string>> kv_;
  std::vector<std::string> used_;
};

}  // namespace lsa::examples
