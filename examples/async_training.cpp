// Asynchronous buffered federated training (paper §4.2, App. F): users
// train against stale global models, the server buffers K masked updates
// and aggregates with quantized staleness weights — privately, via
// asynchronous LightSecAgg. SecAgg/SecAgg+ cannot run in this mode at all
// (paper Remark 1): pairwise masks from different rounds never cancel.
#include <cstdio>

#include "fl/dataset.h"
#include "fl/fedbuff.h"
#include "fl/model.h"

int main() {
  using namespace lsa::fl;

  auto data = SyntheticDataset::mnist_like(1000, 300, 21);
  const std::size_t num_users = 30;
  auto partitions = data.partition_iid(num_users, 22);

  FedBuffConfig cfg;
  cfg.rounds = 16;
  cfg.buffer_k = 6;    // server aggregates every 6 arrivals
  cfg.tau_max = 5;     // updates may be up to 5 rounds stale
  cfg.sgd = {.epochs = 2, .batch_size = 16, .lr = 0.08};
  cfg.staleness = {lsa::quant::StalenessKind::kPolynomial, 1.0};
  cfg.seed = 23;
  cfg.eval_every = 2;

  // Plaintext FedBuff reference.
  LogisticRegression fb(784, 10, 24);
  auto fb_curve = run_fedbuff(fb, data, partitions, cfg);

  // Secure asynchronous LightSecAgg: same schedule, masked updates,
  // integer staleness weights applied inside the field.
  cfg.secure = true;
  cfg.c_l = 1u << 16;
  cfg.c_g = 1u << 6;
  cfg.privacy_t = 4;   // up to 4 colluding users tolerated
  cfg.target_u = 24;   // any 24 responders reconstruct the aggregate mask
  LogisticRegression lsa_model(784, 10, 24);
  auto lsa_curve = run_fedbuff(lsa_model, data, partitions, cfg);

  std::printf("%-8s %16s %22s\n", "round", "FedBuff (plain)",
              "Async LightSecAgg");
  for (std::size_t r = 0; r < cfg.rounds; r += 2) {
    std::printf("%-8zu %15.2f%% %21.2f%%\n", r,
                100 * fb_curve[r].test_accuracy,
                100 * lsa_curve[r].test_accuracy);
  }
  std::printf(
      "\nMasks were generated in different global rounds, yet one MDS "
      "decode per\naggregation recovered their weighted sum — the "
      "commutativity of coding\nand addition that makes LightSecAgg "
      "async-capable (App. F.3.3).\n");
  return 0;
}
