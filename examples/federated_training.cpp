// Synchronous federated training with secure aggregation — the paper's
// core workload (§7). Trains logistic regression on an MNIST-shaped
// synthetic dataset across 12 users with 25% worst-case dropouts per round,
// twice: once with plaintext FedAvg and once with LightSecAgg, and shows
// that the secure run matches the plaintext run while the server only ever
// sees masked vectors.
#include <cstdio>

#include "field/fp.h"
#include "fl/dataset.h"
#include "fl/fedavg.h"
#include "fl/model.h"
#include "protocol/lightsecagg.h"

int main() {
  using namespace lsa::fl;

  const std::size_t num_users = 12;
  auto data = SyntheticDataset::mnist_like(/*train=*/1200, /*test=*/400,
                                           /*seed=*/11);
  auto partitions = data.partition_iid(num_users, 12);

  FedAvgConfig cfg;
  cfg.rounds = 8;
  cfg.dropout_rate = 0.25;
  cfg.sgd = {.epochs = 2, .batch_size = 16, .lr = 0.1};
  cfg.seed = 13;  // same seed -> identical dropout patterns in both runs

  // Plaintext baseline.
  LogisticRegression plain(784, 10, 14);
  auto plain_curve = run_fedavg(plain, data, partitions, cfg,
                                plaintext_average());

  // Secure run: T = 4 colluders tolerated, D = 3 dropouts tolerated.
  lsa::protocol::Params p{.num_users = num_users, .privacy = 4, .dropout = 3,
                          .target_survivors = 0, .model_dim = 7850};
  lsa::protocol::LightSecAgg<lsa::field::Fp32> protocol(p, /*seed=*/15);
  LogisticRegression secure(784, 10, 14);  // same initialization
  auto secure_curve = run_fedavg(secure, data, partitions, cfg,
                                 secure_aggregate(protocol, 1u << 16, 16));

  std::printf("%-8s %18s %18s\n", "round", "plaintext acc", "LightSecAgg acc");
  for (std::size_t r = 0; r < cfg.rounds; ++r) {
    std::printf("%-8zu %17.2f%% %17.2f%%\n", r,
                100 * plain_curve[r].test_accuracy,
                100 * secure_curve[r].test_accuracy);
  }
  std::printf(
      "\nThe two curves coincide up to quantization noise (c_l = 2^16):\n"
      "secure aggregation changes *what the server sees*, not *what the "
      "model learns*.\n");
  return 0;
}
