// Sample-weighted secure aggregation (paper Remark 3) on a heterogeneous
// cohort: users hold very different dataset sizes, so the correct FedAvg
// update weights each local model by its sample count — and Remark 3 shows
// LightSecAgg supports this without the mask sharing ever learning the
// weights (user i simply uploads s_i * x_i + z_i and its clear s_i).
//
// 10 users: two "whales" hold ~64% of all data between them, eight
// "minnows" hold the rest. The minnows' small shards are noisy; plain
// unweighted averaging lets the noisy models outvote the whales 8:2, while
// sample weighting restores the statistically right combination.
#include <cstdio>
#include <numeric>

#include "field/fp.h"
#include "fl/dataset.h"
#include "fl/fedavg.h"
#include "fl/model.h"
#include "fl/secure_adapter.h"
#include "protocol/lightsecagg.h"

namespace {

using F = lsa::field::Fp32;
using namespace lsa::fl;

/// Heterogeneity in both size and distribution: users 0 and 1 ("whales")
/// each hold a large balanced shard; the remaining users ("minnows") hold
/// small single-class shards. Equal-vote averaging lets eight class-biased
/// models outvote the two balanced ones 8:2; sample weighting restores the
/// statistically right mixture.
std::vector<std::vector<std::size_t>> heterogeneous_partition(
    const SyntheticDataset& data, std::size_t num_users,
    std::size_t whale_size, std::size_t minnow_size) {
  std::vector<std::vector<std::size_t>> by_class(data.num_classes());
  for (std::size_t i = 0; i < data.train().size(); ++i) {
    by_class[static_cast<std::size_t>(data.train()[i].label)].push_back(i);
  }
  std::vector<std::vector<std::size_t>> parts(num_users);
  // Whales: balanced round-robin over all classes. (Cursors wrap if a class
  // runs short; a repeated example is harmless here.)
  std::vector<std::size_t> cursor(data.num_classes(), 0);
  auto take = [&](std::size_t c) {
    return by_class[c][cursor[c]++ % by_class[c].size()];
  };
  for (std::size_t u = 0; u < 2; ++u) {
    for (std::size_t k = 0; k < whale_size; ++k) {
      parts[u].push_back(take(k % data.num_classes()));
    }
  }
  // Minnows: one class each.
  for (std::size_t u = 2; u < num_users; ++u) {
    const std::size_t c = (u - 2) % data.num_classes();
    for (std::size_t k = 0; k < minnow_size; ++k) {
      parts[u].push_back(take(c));
    }
  }
  return parts;
}

}  // namespace

int main() {
  const std::size_t num_users = 10;
  auto data = SyntheticDataset::mnist_like(/*train=*/2000, /*test=*/500,
                                           /*seed=*/61);
  auto parts = heterogeneous_partition(data, num_users, /*whale_size=*/600,
                                       /*minnow_size=*/40);

  std::printf("user dataset sizes: ");
  for (const auto& p : parts) std::printf("%zu ", p.size());
  std::printf("\n\n");

  std::vector<std::uint64_t> samples(num_users);
  for (std::size_t i = 0; i < num_users; ++i) {
    samples[i] = parts[i].size();
  }

  lsa::protocol::Params pp{.num_users = num_users, .privacy = 3,
                           .dropout = 2, .target_survivors = 0,
                           .model_dim = 7850};
  lsa::protocol::LightSecAgg<F> proto_w(pp, 62);
  lsa::protocol::LightSecAgg<F> proto_u(pp, 63);

  FedAvgConfig cfg;
  cfg.rounds = 6;
  cfg.dropout_rate = 0.1;
  cfg.sgd = {.epochs = 2, .batch_size = 8, .lr = 0.05};
  cfg.seed = 64;

  // Unweighted secure averaging (every user counts equally).
  LogisticRegression model_u(784, 10, 65);
  auto curve_u = run_fedavg(model_u, data, parts, cfg,
                            secure_aggregate(proto_u, 1u << 16, 66));

  // Sample-weighted secure averaging (Remark 3).
  auto rng = std::make_shared<lsa::common::Xoshiro256ss>(67);
  Aggregate weighted = [&proto_w, &samples, rng](
                           const std::vector<std::vector<double>>& locals,
                           const std::vector<bool>& dropped) {
    return secure_weighted_average<F>(proto_w, locals, samples, dropped,
                                      1u << 16, *rng);
  };
  LogisticRegression model_w(784, 10, 65);  // same init
  auto curve_w = run_fedavg(model_w, data, parts, cfg, weighted);

  std::printf("%-8s %20s %22s\n", "round", "unweighted secure",
              "sample-weighted secure");
  for (std::size_t r = 0; r < cfg.rounds; ++r) {
    std::printf("%-8zu %19.2f%% %21.2f%%\n", r,
                100 * curve_u[r].test_accuracy,
                100 * curve_w[r].test_accuracy);
  }
  std::printf(
      "\nBoth runs are fully secure — the server never sees an individual\n"
      "model; the weighted run additionally matches textbook FedAvg's\n"
      "p_i = s_i / sum(s_i) weighting (Remark 3: weights are applied by\n"
      "each user before masking, so mask encoding is weight-oblivious).\n");
  return 0;
}
