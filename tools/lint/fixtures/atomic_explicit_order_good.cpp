// Known-good fixture: every atomic op names its order, including a
// multi-line compare_exchange (the balanced-paren scan must see through
// the line break). atomic-explicit-order must stay silent here.
#include <atomic>
#include <cstdint>

namespace fx {
inline std::uint64_t bump(std::atomic<std::uint64_t>& c) {
  c.store(1, std::memory_order_release);
  return c.fetch_add(1, std::memory_order_acq_rel);
}

inline bool claim(std::atomic<std::uint64_t>& c, std::uint64_t want) {
  std::uint64_t expected = 0;
  return c.compare_exchange_strong(expected, want,
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire);
}
}  // namespace fx
