// Known-bad thread-safety fixture: writes a guarded member without
// holding its mutex. Under clang with -Wthread-safety
// -Werror=thread-safety this MUST fail to compile — the
// `tsa_smoke_unguarded` ctest entry asserts exactly that (WILL_FAIL),
// proving the analysis leg is live and not silently disabled. Under gcc
// the annotations expand to nothing and the file compiles clean.
#include "common/thread_annotations.h"

namespace fx {

class Counter {
 public:
  void bump_unguarded() { ++value_; }  // BAD: mu_ not held

 private:
  lsa::sync::Mutex mu_;
  int value_ LSA_GUARDED_BY(mu_) = 0;
};

}  // namespace fx

int main() {
  fx::Counter c;
  c.bump_unguarded();
  return 0;
}
