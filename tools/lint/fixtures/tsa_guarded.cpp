// Known-good thread-safety fixture: the repo's annotation conventions in
// miniature — scoped MutexLock acquisition, an LSA_REQUIRES lock-held
// helper, and a guarded member. Must compile clean under clang
// -Wthread-safety -Werror=thread-safety (the `tsa_smoke_guarded` ctest
// entry is the control for tsa_unguarded.cpp's WILL_FAIL).
#include "common/thread_annotations.h"

namespace fx {

class Counter {
 public:
  void bump() {
    lsa::sync::MutexLock lk(mu_);
    bump_locked();
  }

  [[nodiscard]] int value() const {
    lsa::sync::MutexLock lk(mu_);
    return value_;
  }

 private:
  void bump_locked() LSA_REQUIRES(mu_) { ++value_; }

  mutable lsa::sync::Mutex mu_;
  int value_ LSA_GUARDED_BY(mu_) = 0;
};

}  // namespace fx

int main() {
  fx::Counter c;
  c.bump();
  return c.value() == 1 ? 0 : 1;
}
