// Known-good fixture: pooled/container-owned storage only. no-raw-alloc
// must stay silent here (including on `new` without an array bound
// inside a smart pointer).
#include <memory>
#include <vector>

namespace fx {
inline std::vector<unsigned char> staging(unsigned long n) {
  return std::vector<unsigned char>(n);
}

inline std::unique_ptr<int> boxed() { return std::make_unique<int>(7); }
}  // namespace fx
