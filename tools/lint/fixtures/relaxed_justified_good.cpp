// Known-good fixture: both sanctioned comment shapes — a per-site
// justification and a block comment covering the contiguous lines below
// it. relaxed-justified must stay silent here.
#include <atomic>
#include <cstdint>

namespace fx {
inline void count(std::atomic<std::uint64_t>& c) {
  // relaxed: monotonic telemetry total, read quiescently.
  c.fetch_add(1, std::memory_order_relaxed);
}

// relaxed: both gauges below are advisory counters — no reader derives
// an ordering edge from them (block comment covers until the blank line).
inline void count_pair(std::atomic<std::uint64_t>& a,
                       std::atomic<std::uint64_t>& b) {
  a.fetch_add(1, std::memory_order_relaxed);
  b.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace fx
