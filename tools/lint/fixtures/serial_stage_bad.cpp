// Known-bad fixture: a serialized session member mutated outside its
// serial-step allowlist must trip serial-stage (the selftest lints this
// file as if it were src/server/aggregation_server.h).
#include <cstddef>
#include <deque>

namespace fx {
class SyncSession {
 public:
  void prepare_offline() { ++staged_; }
  void retire_online() {
    queue_.pop_front();
    --staged_;
  }
  void poke() { ++staged_; }           // BAD: not a serial driver step
  void drain() { queue_.clear(); }     // BAD: not a serial driver step

 private:
  std::deque<int> queue_;
  std::size_t staged_ = 0;
};
}  // namespace fx
