// Known-bad fixture: a detached thread outliving its captures must trip
// no-thread-detach.
#include <thread>

namespace fx {
inline void fire_and_forget() {
  int local = 0;
  std::thread t([&local] { ++local; });
  t.detach();  // BAD: `local` dies while the thread may still run
}
}  // namespace fx
