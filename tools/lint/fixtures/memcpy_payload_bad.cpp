// Known-bad fixture: copying frame payload bytes into an owned vector —
// the exact copy the zero-copy transport plane exists to avoid — must
// trip memcpy-payload.
#include <cstdint>
#include <cstring>
#include <vector>

namespace fx {
struct Frame {
  std::vector<std::uint8_t> storage;
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return storage;
  }
};

inline std::vector<std::uint8_t> stash(const Frame& f) {
  std::vector<std::uint8_t> owned(f.bytes().size());
  // BAD: payload duplicated into an owned vector (pass the BufferRef)
  std::memcpy(owned.data(), f.bytes().data(), f.bytes().size());
  return owned;
}
}  // namespace fx
