// Known-bad fixture: a memory_order_relaxed access without a
// `// relaxed:` justification must trip relaxed-justified.
#include <atomic>
#include <cstdint>

namespace fx {
inline void count(std::atomic<std::uint64_t>& c) {
  c.fetch_add(1, std::memory_order_relaxed);  // BAD: no justification
}
}  // namespace fx
