// Known-bad fixture: a generic `%` reduction in a fast-path field kernel
// must trip field-no-modulo (lsa_lint.py --selftest asserts it does).
#include <cstdint>

namespace fx {
constexpr std::uint64_t Q = (1ull << 32) - 5;

inline std::uint64_t mul(std::uint64_t a, std::uint64_t b) {
  return (a * b) % Q;  // BAD: division-based reduction on the hot path
}
}  // namespace fx
