// Known-good fixture: the canonical conditional-subtract idiom (lowered
// to cmov), a ternary select, and a `// branch-ok:` annotated conversion
// helper. field-no-branch must stay silent here.
#include <cstdint>

namespace fx {
constexpr std::uint64_t Q = (1ull << 32) - 5;

inline std::uint64_t reduce(std::uint64_t x) {
  if (x >= Q) x -= Q;  // canonical one-shot fold
  return x;
}

inline std::uint64_t add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  return s >= Q ? s - Q : s;  // select form, never an if
}

inline std::int64_t to_i64(std::uint64_t a) {
  // branch-ok: boundary conversion helper, not a reduction kernel.
  if (a <= (Q - 1) / 2) return static_cast<std::int64_t>(a);
  return -static_cast<std::int64_t>(Q - a);
}
}  // namespace fx
