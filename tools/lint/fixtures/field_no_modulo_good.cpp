// Known-good fixture: both sanctioned shapes for `%` in src/field/ —
// a *_reference kernel (exempt by name) and a `// mod-ok:` annotated
// boundary helper. field-no-modulo must stay silent here.
#include <cstdint>

namespace fx {
constexpr std::uint64_t Q = (1ull << 32) - 5;

inline std::uint64_t mul_reference(std::uint64_t a, std::uint64_t b) {
  return (a * b) % Q;  // reference kernel: the oracle the fast paths test
}

inline std::uint64_t from_u64(std::uint64_t v) {
  // mod-ok: boundary conversion helper, not a reduction kernel.
  return v % Q;
}
}  // namespace fx
