// Known-good fixture: serialized members mutated only from allowlisted
// serial steps; class-scope default initializers are exempt. serial-stage
// must stay silent here.
#include <cstddef>
#include <deque>

namespace fx {
class SyncSession {
 public:
  void enqueue_round(int work) { queue_.push_back(work); }
  void prepare_offline() { ++staged_; }
  void retire_online() {
    queue_.pop_front();
    --staged_;
  }
  void clear_pending() {
    queue_.clear();
    staged_ = 0;
  }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  std::deque<int> queue_;
  std::size_t staged_ = 0;  // class-scope initializer: exempt
};
}  // namespace fx
