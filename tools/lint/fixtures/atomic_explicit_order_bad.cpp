// Known-bad fixture: atomic operations with defaulted (seq_cst) memory
// order must trip atomic-explicit-order.
#include <atomic>
#include <cstdint>

namespace fx {
inline std::uint64_t bump(std::atomic<std::uint64_t>& c) {
  c.store(1);             // BAD: order not named
  return c.fetch_add(1);  // BAD: order not named
}
}  // namespace fx
