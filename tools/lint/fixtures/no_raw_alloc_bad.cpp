// Known-bad fixture: raw array/heap allocation in a hot plane must trip
// no-raw-alloc.
#include <cstdlib>

namespace fx {
inline unsigned char* staging_array(unsigned long n) {
  return new unsigned char[n];  // BAD: raw array on the hot plane
}

inline void* staging_heap(unsigned long n) {
  return std::malloc(n);  // BAD: malloc on the hot plane
}
}  // namespace fx
