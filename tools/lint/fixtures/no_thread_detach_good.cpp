// Known-good fixture: every thread joined by its owner before the
// captures die. no-thread-detach must stay silent here.
#include <thread>

namespace fx {
inline int run_joined() {
  int local = 0;
  std::thread t([&local] { ++local; });
  t.join();
  return local;
}
}  // namespace fx
