// Known-bad fixture: a looping data-dependent reduction against the
// modulus must trip field-no-branch (it is neither the one-shot
// conditional-subtract idiom nor annotated).
#include <cstdint>

namespace fx {
constexpr std::uint64_t Q = (1ull << 32) - 5;

inline std::uint64_t reduce(std::uint64_t x) {
  while (x >= Q) x -= Q;  // BAD: mispredicts ~50% on random elements
  return x;
}
}  // namespace fx
