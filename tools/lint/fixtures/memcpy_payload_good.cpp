// Known-good fixture: the sanctioned shapes — a `// copy-ok:` annotated
// single-copy site and a fixed-size header peek (literal size <= 16).
// memcpy-payload must stay silent here.
#include <cstdint>
#include <cstring>
#include <vector>

namespace fx {
struct Frame {
  std::vector<std::uint8_t> storage;
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return storage;
  }
};

inline std::vector<std::uint8_t> ingest(const Frame& f) {
  std::vector<std::uint8_t> owned(f.bytes().size());
  // copy-ok: this fixture's single sanctioned ingest copy.
  std::memcpy(owned.data(), f.bytes().data(), f.bytes().size());
  return owned;
}

inline std::uint32_t peek_payload_elems(const std::uint8_t* header) {
  std::uint32_t payload_elems = 0;
  std::memcpy(&payload_elems, header + 20, 4);  // fixed-size header peek
  return payload_elems;
}
}  // namespace fx
