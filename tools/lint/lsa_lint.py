#!/usr/bin/env python3
"""lsa_lint: repo-convention linter for the LightSecAgg C++ codebase.

Mechanizes the conventions that code review used to carry by hand. Every
rule is backed by a known-bad fixture under tools/lint/fixtures/ that MUST
trip it (and a known-good twin that must not) — `--selftest` proves each
rule is live, and runs as the `lint_selftest` ctest target.

Rules
-----
  field-no-modulo       src/field/: no `%` reduction outside *_reference
                        kernels. The fast paths are Barrett / Mersenne /
                        Goldilocks folds; a stray `%` is a 20-40x latency
                        regression that still passes every unit test.
                        Escape: `// mod-ok: <reason>` on the site.
  field-no-branch       src/field/: no if/while on a value compared against
                        the modulus, except the canonical conditional-
                        subtract idiom `if (x >= Q) x -= Q;` (compiles to
                        cmov). Data-dependent branches mispredict ~50% on
                        random field elements. Escape: `// branch-ok:`.
  no-thread-detach      src/: no `.detach()`. Every thread in this codebase
                        is joined by an owner (ThreadPool, SocketTransport
                        hub); a detached thread outliving its captures is
                        how the TSan suite turns red.
  atomic-explicit-order std::atomic ops must name a std::memory_order.
                        Defaulted seq_cst hides the author's intent and
                        costs a full fence on every access; the transport
                        planes document their edges explicitly.
  relaxed-justified     every `memory_order_relaxed` site must sit under a
                        `// relaxed: <why this cannot order anything>`
                        comment. A relaxed comment covers its own line and
                        the contiguous non-blank lines that follow it.
  no-raw-alloc          src/transport/, src/coding/: no raw `new X[]` /
                        malloc/calloc/realloc in the hot planes — buffers
                        come from BufferPool, matrices from FlatMatrix
                        arenas, everything else from standard containers.
  memcpy-payload        src/transport/, src/runtime/: a memcpy touching
                        frame payloads (`.bytes(` / `payload` in its args)
                        is a sanctioned single-copy site or a bug. Escape:
                        `// copy-ok: <which sanctioned copy this is>`;
                        fixed-size header peeks (literal size <= 16) pass.
  serial-stage          src/server/aggregation_server.h: session queue and
                        telemetry members may only be mutated from the
                        functions the pipelined driver runs serially
                        (the stage-interface contract the data-race
                        freedom argument rests on).

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import bisect
import re
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE_DIR = Path(__file__).resolve().parent / "fixtures"

# ---------------------------------------------------------------------------
# findings


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# lexing: blank out comments/strings (preserving offsets and newlines) so
# rules match code only, and keep the comment channel for escape hatches.


def lex(text: str) -> tuple[str, str]:
    """Returns (code, comments), both exactly len(text).

    `code` has comments and string/char literals replaced by spaces;
    `comments` has everything EXCEPT comment bodies replaced by spaces.
    Newlines survive in both so line numbers line up with the original.
    """
    code = []
    comments = []
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                code.append("  ")
                comments.append("//")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                code.append("  ")
                comments.append("/*")
                i += 2
                continue
            if c == '"':
                state = STRING
                code.append(" ")
                comments.append(" ")
                i += 1
                continue
            if c == "'":
                state = CHAR
                code.append(" ")
                comments.append(" ")
                i += 1
                continue
            code.append(c)
            comments.append(c if c == "\n" else " ")
            i += 1
            continue
        if state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                code.append("\n")
                comments.append("\n")
            else:
                code.append(" ")
                comments.append(c)
            i += 1
            continue
        if state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                code.append("  ")
                comments.append("*/")
                i += 2
                continue
            code.append("\n" if c == "\n" else " ")
            comments.append(c)
            i += 1
            continue
        # STRING / CHAR: skip escapes, keep newlines (unterminated literals
        # never occur in well-formed code; be defensive anyway).
        if c == "\\" and i + 1 < n:
            code.append("  ")
            comments.append("  ")
            i += 2
            continue
        if (state == STRING and c == '"') or (state == CHAR and c == "'"):
            state = NORMAL
        code.append("\n" if c == "\n" else " ")
        comments.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(code), "".join(comments)


def blank_preprocessor(code: str) -> str:
    """Blanks preprocessor directives (and their `\\` continuations) from
    already-lexed code so `#if defined(Q)` never reads as a branch."""
    out = []
    cont = False
    for line in code.split("\n"):
        stripped = line.lstrip()
        if cont or stripped.startswith("#"):
            next_cont = line.rstrip().endswith("\\")
            out.append(" " * len(line))
            cont = next_cont
        else:
            out.append(line)
            cont = False
    return "\n".join(out)


def line_starts_of(text: str) -> list[int]:
    starts = [0]
    for i, c in enumerate(text):
        if c == "\n":
            starts.append(i + 1)
    return starts


def line_of(pos: int, starts: list[int]) -> int:
    return bisect.bisect_right(starts, pos)  # 1-based


def balanced_args(code: str, open_paren: int) -> str | None:
    """Returns the argument text between the paren at `open_paren` and its
    match, or None if unbalanced (truncated file)."""
    depth = 0
    for j in range(open_paren, len(code)):
        c = code[j]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return code[open_paren + 1 : j]
    return None


def split_top_level(args: str) -> list[str]:
    parts, depth, cur = [], 0, []
    for c in args:
        if c in "([{<":
            # `<` tracking is heuristic (templates vs less-than); the size
            # argument we classify is the LAST part, which a stray `<`
            # never splits.
            depth += 1 if c != "<" else 0
        if c in ")]}>":
            depth -= 1 if c != ">" else 0
        if c == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


# ---------------------------------------------------------------------------
# escape-hatch coverage


def tagged_sites(text: str, comments: str, tag: str) -> set[int]:
    """Lines covered by a `// <tag>:` escape comment: the comment's own
    line(s), any continuation `//` lines, plus the first following code
    line. This is the conventional shape — a short justification comment
    immediately above (or trailing on) the site it sanctions."""
    lines = text.split("\n")
    comment_lines = comments.split("\n")
    covered: set[int] = set()
    pending = False
    for idx in range(len(lines)):
        if tag + ":" in comment_lines[idx]:
            covered.add(idx + 1)
            pending = True
            continue
        if pending:
            covered.add(idx + 1)
            if not lines[idx].lstrip().startswith("//"):
                pending = False  # consumed by the sanctioned code line
    return covered


def relaxed_covered(text: str, comments: str) -> set[int]:
    """`// relaxed:` covers its own line and every subsequent contiguous
    non-blank line until the first blank line — wide enough for a block
    comment to sanction the handful of loads/stores it explains."""
    lines = text.split("\n")
    comment_lines = comments.split("\n")
    covered: set[int] = set()
    active = False
    for idx in range(len(lines)):
        if "relaxed:" in comment_lines[idx]:
            active = True
        if lines[idx].strip() == "":
            active = False
        if active:
            covered.add(idx + 1)
    return covered


# ---------------------------------------------------------------------------
# function-scope tracking (textual, good enough for headers in this repo)

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return",
                    "sizeof", "decltype", "alignof", "alignas",
                    "static_assert", "noexcept", "requires", "constexpr"}
LAMBDA_RE = re.compile(r"\[[^\]]*\]\s*\(")
CANDIDATE_RE = re.compile(r"([A-Za-z_]\w*)\s*\(")


def scope_intervals(code: str) -> list[tuple[int, str | None]]:
    """Returns [(pos, scope_name)] breakpoints: the enclosing function name
    (or None for namespace/class scope) for every position >= pos until the
    next breakpoint. Lambdas inherit their enclosing function's name."""
    events: list[tuple[int, str | None]] = [(0, None)]
    stack: list[str | None] = [None]
    seg_start = 0
    for i, c in enumerate(code):
        if c in ";":
            seg_start = i + 1
        elif c == "{":
            buf = code[seg_start:i]
            name = stack[-1]
            if LAMBDA_RE.search(buf):
                pass  # lambda body: inherit
            else:
                m = CANDIDATE_RE.search(buf)
                if m and m.group(1) not in CONTROL_KEYWORDS:
                    name = m.group(1)
            stack.append(name)
            events.append((i, name))
            seg_start = i + 1
        elif c == "}":
            if len(stack) > 1:
                stack.pop()
            events.append((i, stack[-1]))
            seg_start = i + 1
    return events


def scope_at(events: list[tuple[int, str | None]], pos: int) -> str | None:
    idx = bisect.bisect_right(events, (pos, chr(0x10FFFF))) - 1
    return events[max(idx, 0)][1]


# ---------------------------------------------------------------------------
# rules


def rule_field_no_modulo(text, code, comments, relpath) -> list[Finding]:
    if not relpath.startswith("src/field/"):
        return []
    starts = line_starts_of(text)
    ok_lines = tagged_sites(text, comments, "mod-ok")
    events = scope_intervals(code)
    out = []
    for m in re.finditer(r"%", code):
        line = line_of(m.start(), starts)
        if line in ok_lines:
            continue
        scope = scope_at(events, m.start())
        if scope is not None and scope.endswith("_reference"):
            continue
        out.append(Finding(
            "field-no-modulo", relpath, line,
            "generic `%` reduction in a field kernel (use the Barrett/"
            "Mersenne/Goldilocks fold, move it into a *_reference kernel, "
            "or justify with `// mod-ok:`)"))
    return out


IDIOM_RE = re.compile(
    r"if\s*\(\s*([A-Za-z_]\w*)\s*>=\s*(Q|modulus|kModulus)\s*\)"
    r"\s*\1\s*-=\s*\2\s*;")
MODULUS_ID_RE = re.compile(r"\b(Q|modulus|kModulus)\b")


def rule_field_no_branch(text, code, comments, relpath) -> list[Finding]:
    if not relpath.startswith("src/field/"):
        return []
    starts = line_starts_of(text)
    ok_lines = tagged_sites(text, comments, "branch-ok")
    events = scope_intervals(code)
    out = []
    for m in re.finditer(r"\b(if|while)\s*\(", code):
        open_paren = m.end() - 1
        cond = balanced_args(code, open_paren)
        if cond is None or not MODULUS_ID_RE.search(cond):
            continue
        if IDIOM_RE.match(code, m.start()):
            continue  # canonical conditional-subtract, lowered to cmov
        line = line_of(m.start(), starts)
        if line in ok_lines:
            continue
        scope = scope_at(events, m.start())
        if scope is not None and scope.endswith("_reference"):
            continue
        out.append(Finding(
            "field-no-branch", relpath, line,
            "data-dependent branch on a modulus comparison (use mask/"
            "select or the `if (x >= Q) x -= Q;` idiom, or justify with "
            "`// branch-ok:`)"))
    return out


def rule_no_thread_detach(text, code, comments, relpath) -> list[Finding]:
    starts = line_starts_of(text)
    return [
        Finding("no-thread-detach", relpath, line_of(m.start(), starts),
                "`.detach()` — every thread must be joined by an owner "
                "(ThreadPool, transport hub); detached threads outlive "
                "their captures")
        for m in re.finditer(r"\.\s*detach\s*\(", code)
    ]


ATOMIC_OP_RE = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\(")


def rule_atomic_explicit_order(text, code, comments, relpath) -> list[Finding]:
    starts = line_starts_of(text)
    out = []
    for m in ATOMIC_OP_RE.finditer(code):
        args = balanced_args(code, m.end() - 1)
        if args is None or "memory_order" in args:
            continue
        out.append(Finding(
            "atomic-explicit-order", relpath, line_of(m.start(), starts),
            f"`.{m.group(1)}()` without an explicit std::memory_order "
            "(defaulted seq_cst hides intent; name the edge)"))
    return out


def rule_relaxed_justified(text, code, comments, relpath) -> list[Finding]:
    starts = line_starts_of(text)
    covered = relaxed_covered(text, comments)
    out = []
    for m in re.finditer(r"\bmemory_order_relaxed\b", code):
        line = line_of(m.start(), starts)
        if line not in covered:
            out.append(Finding(
                "relaxed-justified", relpath, line,
                "memory_order_relaxed without a `// relaxed:` comment "
                "explaining why this access orders nothing"))
    return out


RAW_ALLOC_RE = re.compile(
    r"\bnew\s+[\w:<>,\s]*?\[|\b(malloc|calloc|realloc)\s*\(")


def rule_no_raw_alloc(text, code, comments, relpath) -> list[Finding]:
    if not (relpath.startswith("src/transport/")
            or relpath.startswith("src/coding/")):
        return []
    starts = line_starts_of(text)
    return [
        Finding("no-raw-alloc", relpath, line_of(m.start(), starts),
                "raw array/heap allocation in a hot plane (buffers come "
                "from BufferPool, matrices from FlatMatrix arenas)")
        for m in RAW_ALLOC_RE.finditer(code)
    ]


def rule_memcpy_payload(text, code, comments, relpath) -> list[Finding]:
    if not (relpath.startswith("src/transport/")
            or relpath.startswith("src/runtime/")):
        return []
    starts = line_starts_of(text)
    ok_lines = tagged_sites(text, comments, "copy-ok")
    out = []
    for m in re.finditer(r"\bmemcpy\s*\(", code):
        args = balanced_args(code, m.end() - 1)
        if args is None:
            continue
        if ".bytes(" not in args and "payload" not in args:
            continue
        parts = split_top_level(args)
        if len(parts) >= 3:
            size = parts[-1].strip()
            if re.fullmatch(r"\d+", size) and int(size) <= 16:
                continue  # fixed-size header peek
        line = line_of(m.start(), starts)
        if line in ok_lines:
            continue
        out.append(Finding(
            "memcpy-payload", relpath, line,
            "memcpy of frame payload bytes outside the sanctioned single-"
            "copy sites (frames move by BufferRef; justify a new copy "
            "with `// copy-ok:`)"))
    return out


# The pipelined driver's data-race-freedom argument: these members are only
# touched by the steps the shard task runs serially (between, not during,
# the concurrent stage pair). Growing the stage interface means growing
# this map — deliberately, in the same review.
SERIAL_STAGE_ALLOW: dict[str, set[str]] = {
    "queue_": {"enqueue_round", "enqueue_cycle", "clear_pending",
               "retire_online", "step"},
    "staged_": {"prepare_offline", "retire_online", "clear_pending"},
    "pending_offline_round_": {"prepare_offline"},
    "max_in_flight_": {"run_round", "prepare_offline"},
    "last_offline_s_": {"run_offline_stage"},
    "offline_stage_s_": {"run_offline_stage"},
    "last_online_s_": {"run_online_stage"},
    "offline_hidden_s_": {"note_wave"},
    "pipeline_stalls_": {"note_wave"},
    "next_scheduled_cycle_": {"enqueue_scheduled_cycles"},
}

MUTATION_TEMPLATES = [
    r"\b{m}\s*=(?![=])",            # assignment (not ==)
    r"\b{m}\s*(?:\+=|-=)",          # compound update
    r"(?:\+\+|--)\s*{m}\b",         # pre-inc/dec
    r"\b{m}\s*(?:\+\+|--)",         # post-inc/dec
    r"\b{m}\s*\.\s*(?:push_back|push_front|pop_front|pop_back|clear|"
    r"emplace\w*|resize|assign|insert|erase)\s*\(",
]


def rule_serial_stage(text, code, comments, relpath) -> list[Finding]:
    if not relpath.endswith("server/aggregation_server.h"):
        return []
    starts = line_starts_of(text)
    events = scope_intervals(code)
    out = []
    for member, allowed in SERIAL_STAGE_ALLOW.items():
        for template in MUTATION_TEMPLATES:
            for m in re.finditer(template.format(m=member), code):
                scope = scope_at(events, m.start())
                if scope is None:
                    continue  # class-scope declaration / default initializer
                if scope in allowed:
                    continue
                out.append(Finding(
                    "serial-stage", relpath, line_of(m.start(), starts),
                    f"`{member}` mutated in `{scope}()`, which is not in "
                    f"its serial-step allowlist {sorted(allowed)} — the "
                    "pipelined driver's race-freedom argument only covers "
                    "the serial steps"))
    return out


RULES = [
    ("field-no-modulo", rule_field_no_modulo, "src/field/fixture.h"),
    ("field-no-branch", rule_field_no_branch, "src/field/fixture.h"),
    ("no-thread-detach", rule_no_thread_detach, "src/sys/fixture.h"),
    ("atomic-explicit-order", rule_atomic_explicit_order,
     "src/transport/fixture.h"),
    ("relaxed-justified", rule_relaxed_justified, "src/transport/fixture.h"),
    ("no-raw-alloc", rule_no_raw_alloc, "src/transport/fixture.h"),
    ("memcpy-payload", rule_memcpy_payload, "src/transport/fixture.h"),
    ("serial-stage", rule_serial_stage, "src/server/aggregation_server.h"),
]


def run_rules(text: str, relpath: str) -> list[Finding]:
    code_raw, comments = lex(text)
    code = blank_preprocessor(code_raw)
    findings: list[Finding] = []
    for _, fn, _ in RULES:
        findings.extend(fn(text, code, comments, relpath))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# ---------------------------------------------------------------------------
# selftest: every rule must fire on its bad fixture and stay silent on the
# good twin — a rule without a failing fixture is dead weight.


def selftest() -> int:
    failures = 0
    for rule, _, fixture_relpath in RULES:
        slug = rule.replace("-", "_")
        bad = FIXTURE_DIR / f"{slug}_bad.cpp"
        good = FIXTURE_DIR / f"{slug}_good.cpp"
        for path, expect_hit in ((bad, True), (good, False)):
            if not path.exists():
                print(f"selftest FAIL: missing fixture {path}")
                failures += 1
                continue
            hits = [f for f in run_rules(path.read_text(), fixture_relpath)
                    if f.rule == rule]
            if expect_hit and not hits:
                print(f"selftest FAIL: {rule} did not fire on {path.name}")
                failures += 1
            elif not expect_hit and hits:
                print(f"selftest FAIL: {rule} fired on {path.name}:")
                for f in hits:
                    print(f"  {f}")
                failures += 1
            else:
                state = "fires on" if expect_hit else "silent on"
                print(f"selftest ok: {rule:>22} {state} {path.name}")
    if failures:
        print(f"selftest: {failures} failure(s)")
        return 1
    print(f"selftest: all {len(RULES)} rules live")
    return 0


# ---------------------------------------------------------------------------


def gather_files(args: list[str]) -> list[Path]:
    if args:
        roots = [Path(a) for a in args]
    else:
        roots = [REPO_ROOT / "src"]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        else:
            files.extend(sorted(root.rglob("*.h")))
            files.extend(sorted(root.rglob("*.cpp")))
    return sorted(set(files))


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: <repo>/src)")
    parser.add_argument("--selftest", action="store_true",
                        help="prove every rule live against its fixtures")
    opts = parser.parse_args(argv)
    if opts.selftest:
        return selftest()
    findings: list[Finding] = []
    nfiles = 0
    for path in gather_files(opts.paths):
        try:
            relpath = path.resolve().relative_to(REPO_ROOT).as_posix()
        except ValueError:
            relpath = path.as_posix()
        findings.extend(run_rules(path.read_text(), relpath))
        nfiles += 1
    for f in findings:
        print(f)
    if findings:
        print(f"lsa_lint: {len(findings)} finding(s) in {nfiles} file(s)")
        return 1
    print(f"lsa_lint: clean ({nfiles} files, {len(RULES)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
