// Table 2: the four learning tasks and LightSecAgg's gain over SecAgg and
// SecAgg+ in three aggregation modes: non-overlapped total, overlapped
// total, and aggregation-only (offline + upload + recovery, no training).
//
// N = 200 users, p = 10% dropouts, measured 320 Mb/s bandwidth.
#include <cstdio>

#include "bench_common.h"

namespace {
using namespace lsa::bench;

struct Gain {
  double non_overlapped, overlapped, aggregation_only;
};

Gain gain_vs(const lsa::net::RoundBreakdown& base,
             const lsa::net::RoundBreakdown& lsa_rb) {
  Gain g;
  g.non_overlapped = base.total_nonoverlapped() / lsa_rb.total_nonoverlapped();
  g.overlapped = base.total_overlapped() / lsa_rb.total_overlapped();
  const double base_agg = base.offline + base.upload + base.recovery;
  const double lsa_agg = lsa_rb.offline + lsa_rb.upload + lsa_rb.recovery;
  g.aggregation_only = base_agg / lsa_agg;
  return g;
}

}  // namespace

int main() {
  using namespace lsa::bench;
  print_header(
      "Table 2 — four ML tasks; gain of LightSecAgg vs (SecAgg, SecAgg+)\n"
      "N = 200, p = 10%, 320 Mb/s");
  const auto cost = lsa::net::CostModel::paper_stack();
  const auto bw = lsa::net::BandwidthProfile::measured_320mbps();

  std::printf("%-10s %-18s %10s | %-17s %-17s %-17s\n", "Dataset", "Model",
              "d", "Non-overlapped", "Overlapped", "Aggregation-only");
  for (const auto& task : kTasks) {
    lsa::net::RoundBreakdown rb[3];
    for (int k = 0; k < 3; ++k) {
      Scenario sc;
      sc.protocol = kAllProtocols[k];
      sc.n = 200;
      sc.dropout_rate = 0.1;
      sc.d_real = task.d;
      sc.train_seconds = task.train_seconds;
      sc.seed = 7;
      rb[k] = run_scenario(sc, cost, bw, paper_opts());
    }
    const auto vs_secagg = gain_vs(rb[0], rb[2]);
    const auto vs_plus = gain_vs(rb[1], rb[2]);
    std::printf(
        "%-10s %-18s %10zu | %6.1fx, %5.1fx   %6.1fx, %5.1fx   %6.1fx, "
        "%5.1fx\n",
        task.name, task.model, task.d, vs_secagg.non_overlapped,
        vs_plus.non_overlapped, vs_secagg.overlapped, vs_plus.overlapped,
        vs_secagg.aggregation_only, vs_plus.aggregation_only);
  }
  std::printf(
      "\nExpected shape (paper Table 2): gains of ~7-13x vs SecAgg and\n"
      "~2.5-4x vs SecAgg+; smallest total-time gain on the training-heavy\n"
      "GLD-23K task; aggregation-only gain ~13x / ~4x regardless of d.\n");
  return 0;
}
