// Ablation — stragglers and the choice of U (Remark 2: "LightSecAgg only
// requires at least U surviving users at any time during the execution").
//
// In a cross-device fleet, response times are heavy-tailed: most devices
// answer fast, a few straggle. The server's recovery phase completes at the
// U-th fastest response — an order statistic — so raising U buys smaller
// shares (segment d/(U-T)) but waits deeper into the latency tail. This
// bench samples log-normal per-device response times (the standard fleet
// model), computes the expected U-th order statistic, combines it with the
// real per-share transfer sizes, and locates the latency-optimal U — a
// different lens on §7.2's "Impact of U" than the compute-centred sweep of
// ablation_impact_of_u.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"

namespace {

/// Expected time of the u-th fastest of n log-normal responders,
/// estimated by Monte Carlo (exact enough at 4000 trials).
double uth_response_time(std::size_t n, std::size_t u, double mu,
                         double sigma, lsa::common::Xoshiro256ss& rng) {
  constexpr int kTrials = 4000;
  std::vector<double> times(n);
  double total = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    for (auto& t : times) {
      t = std::exp(mu + sigma * rng.next_gaussian());
    }
    std::nth_element(times.begin(),
                     times.begin() + static_cast<std::ptrdiff_t>(u - 1),
                     times.end());
    total += times[u - 1];
  }
  return total / kTrials;
}

}  // namespace

int main() {
  using namespace lsa::bench;
  print_header(
      "Ablation — stragglers vs the design parameter U (Remark 2)\n"
      "N = 200 devices, log-normal response times (median 1 s, sigma 0.8),\n"
      "CNN/FEMNIST-sized shares on 320 Mb/s; recovery completes at the\n"
      "U-th fastest aggregated-share response");

  const std::size_t n = 200;
  const std::size_t t = 100;         // T = N/2
  const std::size_t d = 1206590;     // CNN/FEMNIST
  const double bytes_per_elem = 4.0;
  const double link_bytes_per_s = 320e6 / 8.0;
  const double sigma = 0.8;

  lsa::common::Xoshiro256ss rng(97);
  std::printf("%-6s %-12s | %12s %12s %12s | %12s\n", "U", "seg=d/(U-T)",
              "wait Uth(s)", "xfer seg(s)", "decode(s)", "recovery(s)");

  double best_total = 1e300;
  std::size_t best_u = 0;
  for (std::size_t u = t + 2; u <= n - 2; u += 14) {
    const std::size_t seg = (d + (u - t) - 1) / (u - t);
    // Straggler wait: U-th order statistic of the fleet's response times.
    const double wait = uth_response_time(n, u, 0.0, sigma, rng);
    // Each response carries one segment; the server's downlink is shared,
    // so U segments stream through it.
    const double xfer = static_cast<double>(u) * static_cast<double>(seg) *
                        bytes_per_elem / link_bytes_per_s;
    // Decode: O(U d) field ops at the calibrated ~3.3e8 mul/s of this box.
    const double decode = static_cast<double>(u) * static_cast<double>(d) /
                          3.3e8;
    const double total = wait + xfer + decode;
    if (total < best_total) {
      best_total = total;
      best_u = u;
    }
    std::printf("%-6zu %-12zu | %12.2f %12.2f %12.2f | %12.2f\n", u, seg,
                wait, xfer, decode, total);
  }
  std::printf(
      "\nLatency-optimal U = %zu (%.2f s recovery).\n"
      "Reading: small U answers after the fastest responders but pays huge\n"
      "segments (d/(U-T)); large U shrinks segments but waits on the\n"
      "straggler tail, whose order statistic grows super-linearly in the\n"
      "log-normal tail. The optimum again sits in the interior — the\n"
      "paper's U ~ 0.7N heuristic lands within the flat region even under\n"
      "a heavy-tailed fleet, complementing ablation_impact_of_u's compute-\n"
      "centred account of the same §7.2 finding.\n",
      best_u, best_total);
  return 0;
}
