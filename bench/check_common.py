"""Shared scaffolding for the bench regression gates.

Each gate script (check_decode_regression.py, check_async_regression.py,
check_transport_regression.py) loads a BENCH_*.json report and a checked-in
tolerance file, then asserts per-record floors/ceilings. The loading,
record lookup, and pass/fail reporting live here so the three gates cannot
drift apart.
"""
import json


class Gate:
    """Floor/ceiling checks over one bench report's records."""

    def __init__(self, bench_path: str, tolerance_path: str):
        with open(bench_path) as f:
            bench = json.load(f)
        with open(tolerance_path) as f:
            self.tolerance = json.load(f)
        self.records = {r["name"]: r for r in bench["records"]}
        self.failures = []

    def _lookup(self, name, field):
        rec = self.records.get(name)
        if rec is None or field not in rec:
            self.failures.append(f"missing record {name}.{field}")
            return None
        return rec[field]

    def _check(self, name, field, value, ok, rule):
        status = "ok" if ok else "REGRESSION"
        print(f"{name}.{field}: {value:.3f} ({rule}) {status}")
        if not ok:
            self.failures.append(f"{name}.{field} = {value:.3f} violates {rule}")

    def require_min(self, name, field, minimum):
        value = self._lookup(name, field)
        if value is not None:
            self._check(name, field, value, value >= minimum, f"min {minimum}")

    def require_max(self, name, field, maximum):
        value = self._lookup(name, field)
        if value is not None:
            self._check(name, field, value, value <= maximum, f"max {maximum}")

    def finish(self, what: str) -> int:
        """Prints the verdict; returns the process exit code."""
        if self.failures:
            print(f"\n{what} regression detected:")
            for f in self.failures:
                print(f"  - {f}")
            return 1
        print(f"\nAll {what} gates passed.")
        return 0
