// Ablation — asynchronous privacy alternatives (paper §1 / Remark 1): the
// paper claims asynchronous LightSecAgg is the first to protect individual
// updates in async FL "without relying on differential privacy or TEEs".
// This bench makes the DP alternative concrete: FedBuff where every user
// clips its update and adds Gaussian noise locally (dp/mechanism.h), at
// several noise levels, with the zCDP-accounted per-user epsilon after the
// whole run — next to async LightSecAgg on the identical arrival schedule,
// whose only distortion is c_l-quantization and which leaks nothing to the
// honest-but-curious server within a round.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "dp/mechanism.h"
#include "fl/fedbuff.h"
#include "fl/model.h"

namespace {

using namespace lsa::fl;
namespace dp = lsa::dp;

constexpr std::size_t kUsers = 40;
constexpr std::size_t kRounds = 20;
constexpr std::size_t kBufferK = 8;

struct Run {
  std::vector<RoundRecord> curve;
  double epsilon = -1.0;  ///< per-user (worst case), -1 = not applicable
};

Run run_variant(const SyntheticDataset& ds, bool secure, double dp_sigma) {
  LogisticRegression global(784, 10, 41);
  auto parts = ds.partition_iid(kUsers, 42);
  FedBuffConfig cfg;
  cfg.rounds = kRounds;
  cfg.buffer_k = kBufferK;
  cfg.tau_max = 6;
  cfg.sgd = {.epochs = 1, .batch_size = 16, .lr = 0.1};
  cfg.seed = 43;  // same arrival schedule for every variant
  cfg.eval_every = 2;
  cfg.secure = secure;

  Run out;
  dp::ZcdpAccountant acct;
  if (dp_sigma > 0) {
    dp::GaussianDpConfig dpc;
    dpc.clip = 1.0;
    dpc.noise_multiplier = dp_sigma;
    dpc.seed = 44;
    cfg.update_transform = dp::make_local_dp_transform(dpc, &acct);
  }
  out.curve = run_fedbuff(global, ds, parts, cfg);
  if (dp_sigma > 0) {
    // Per-user worst case: a user participates in at most
    // ceil(rounds * K / N) buffer slots in expectation; bound by the
    // actual total releases divided evenly is the *average*, so charge the
    // pessimistic all-rounds bound instead.
    const std::size_t max_participations =
        (kRounds * kBufferK + kUsers - 1) / kUsers * 2;  // 2x headroom
    out.epsilon =
        dp::ZcdpAccountant::epsilon_for(dp_sigma, max_participations, 1e-5);
  }
  return out;
}

}  // namespace

int main() {
  lsa::bench::print_header(
      "Ablation — async privacy alternatives: FedBuff + local DP vs async\n"
      "LightSecAgg (identical arrival schedule; MNIST-shaped task, LR).\n"
      "DP epsilon: per-user worst case over the whole run, delta = 1e-5.");

  auto ds = SyntheticDataset::mnist_like(1200, 300, 40);

  const auto plain = run_variant(ds, false, 0.0);
  const auto lsa_run = run_variant(ds, true, 0.0);
  const auto dp_low = run_variant(ds, false, 0.3);
  const auto dp_mid = run_variant(ds, false, 1.0);
  const auto dp_high = run_variant(ds, false, 3.0);

  std::printf("%-8s %13s %13s %13s %13s %13s\n", "round", "FedBuff",
              "AsyncLSA", "DP s=0.3", "DP s=1.0", "DP s=3.0");
  for (std::size_t r = 0; r < kRounds; r += 2) {
    std::printf("%-8zu %12.2f%% %12.2f%% %12.2f%% %12.2f%% %12.2f%%\n", r,
                100 * plain.curve[r].test_accuracy,
                100 * lsa_run.curve[r].test_accuracy,
                100 * dp_low.curve[r].test_accuracy,
                100 * dp_mid.curve[r].test_accuracy,
                100 * dp_high.curve[r].test_accuracy);
  }
  std::printf("\nper-user epsilon (delta=1e-5):%17s %13s %13.1f %13.1f %13.1f\n",
              "exact", "exact", dp_low.epsilon, dp_mid.epsilon,
              dp_high.epsilon);
  std::printf(
      "\nReading: async LightSecAgg tracks plaintext FedBuff within\n"
      "quantization noise while revealing only the K-update aggregate —\n"
      "no privacy/accuracy dial to tune. Local DP must choose: sigma small\n"
      "enough to learn (s = 0.3) prices out at a weak epsilon, while a\n"
      "respectable epsilon (s >= 1) visibly costs accuracy. TEE-based\n"
      "FedBuff avoids both at the cost of trusted hardware (Remark 1).\n");
  return 0;
}
