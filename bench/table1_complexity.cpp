// Table 1: storage / communication / computation complexity comparison.
//
// The paper's Table 1 is asymptotic; here we *measure* the quantities from
// the traffic ledger of functionally executed rounds and verify the growth
// rates by printing an N-sweep plus the empirical scaling exponent between
// the two largest N (log2 of the ratio when N doubles).
// Settings follow §5.2: T = N/2, D = pN with p = 0.1, U = 0.7N.
#include <cmath>
#include <cstdio>

#include "bench_common.h"

namespace {
using namespace lsa::bench;
using lsa::ProtocolKind;
using lsa::net::CompKind;
using lsa::net::Phase;

struct Counts {
  double offline_comm_user;   // elements sent per user, offline
  double offline_comp_user;   // compute units per user, offline
  double online_comm_user;    // upload elements per user
  double online_comm_server;  // elements received by server (upload+recovery)
  double reconstruction;      // server compute units during recovery
};

Counts measure(ProtocolKind kind, std::size_t n, double d_real) {
  using Fp = lsa::field::Fp32;
  const auto rp = resolve_params(n, 0.1);
  const std::size_t d_sim = std::max<std::size_t>(rp.u - rp.t, 64);
  lsa::protocol::Params params{.num_users = n, .privacy = rp.t,
                               .dropout = n - rp.u,
                               .target_survivors = rp.u,
                               .model_dim = d_sim};
  lsa::net::Ledger ledger(n);
  std::unique_ptr<lsa::protocol::SecureAggregator<Fp>> proto;
  switch (kind) {
    case ProtocolKind::kSecAgg:
      proto = std::make_unique<lsa::protocol::SecAgg<Fp>>(params, 3, &ledger);
      break;
    case ProtocolKind::kSecAggPlus:
      proto = std::make_unique<lsa::protocol::SecAggPlus<Fp>>(params, 3,
                                                              &ledger);
      break;
    case ProtocolKind::kLightSecAgg:
      proto = std::make_unique<lsa::protocol::LightSecAgg<Fp>>(params, 3,
                                                               &ledger);
      break;
    case ProtocolKind::kFastSecAgg:
      proto = std::make_unique<lsa::protocol::FastSecAgg<Fp>>(params, 3,
                                                              &ledger);
      break;
    default:
      throw lsa::ConfigError("table1: protocol not in this comparison");
  }
  lsa::common::Xoshiro256ss rng(4);
  std::vector<std::vector<Fp::rep>> inputs(n);
  for (auto& v : inputs) v = lsa::field::uniform_vector<Fp>(d_sim, rng);
  std::vector<bool> dropped(n, false);
  for (std::size_t k = 0; k < rp.d_drop; ++k) {
    std::size_t pick;
    do {
      pick = static_cast<std::size_t>(rng.next_below(n));
    } while (dropped[pick]);
    dropped[pick] = true;
  }
  (void)proto->run_round(inputs, dropped);

  const double scale = d_real / static_cast<double>(d_sim);
  auto elems = [&](Phase ph, std::size_t e) {
    return static_cast<double>(ledger.sent_elems(ph, e, false)) +
           scale * static_cast<double>(ledger.sent_elems(ph, e, true));
  };
  auto comp = [&](Phase ph, std::size_t e) {
    double s = 0;
    for (std::size_t k = 0; k < lsa::net::kNumCompKinds; ++k) {
      s += static_cast<double>(
               ledger.compute_elems(ph, e, static_cast<CompKind>(k), false)) +
           scale * static_cast<double>(ledger.compute_elems(
                       ph, e, static_cast<CompKind>(k), true));
    }
    return s;
  };
  Counts c{};
  c.offline_comm_user = elems(Phase::kOffline, 0);
  c.offline_comp_user = comp(Phase::kOffline, 0);
  c.online_comm_user = elems(Phase::kUpload, 0);
  const auto server = ledger.server_id();
  c.online_comm_server =
      static_cast<double>(ledger.recv_elems_of(Phase::kUpload, server, false) +
                          ledger.recv_elems_of(Phase::kRecovery, server, false)) +
      scale * static_cast<double>(
                  ledger.recv_elems_of(Phase::kUpload, server, true) +
                  ledger.recv_elems_of(Phase::kRecovery, server, true));
  c.reconstruction = comp(Phase::kRecovery, server);
  return c;
}

// The paper's three protocols plus FastSecAgg (related work, Remark 4) as
// an extension row.
inline constexpr ProtocolKind kTableKinds[] = {
    ProtocolKind::kSecAgg, ProtocolKind::kSecAggPlus,
    ProtocolKind::kLightSecAgg, ProtocolKind::kFastSecAgg};
inline constexpr const char* kTableNames[] = {"SecAgg", "SecAgg+",
                                              "LightSecAgg", "FastSecAgg*"};
inline constexpr int kNumKinds = 4;

void print_metric(const char* name, double Counts::* field,
                  const Counts (&all)[kNumKinds][4],
                  const std::size_t (&ns)[4]) {
  std::printf("\n%s (field elements / op units)\n", name);
  std::printf("%-12s", "Protocol");
  for (auto n : ns) std::printf(" %11s%-4zu", "N=", n);
  std::printf(" %10s\n", "exponent");
  for (int k = 0; k < kNumKinds; ++k) {
    std::printf("%-12s", kTableNames[k]);
    for (int i = 0; i < 4; ++i) std::printf(" %15.3g", all[k][i].*field);
    // Empirical growth: log2(v(200)/v(100)); "--" when the cost is zero.
    if (all[k][2].*field <= 0.0) {
      std::printf(" %10s\n", "--");
    } else {
      const double expn = std::log2(all[k][3].*field / all[k][2].*field);
      std::printf(" %10.2f\n", expn);
    }
  }
}

}  // namespace

int main() {
  print_header(
      "Table 1 — complexity comparison (measured from the traffic ledger)\n"
      "T = N/2, p = 0.1, U = 0.7N, d = 1,206,590; exponent = log2 growth "
      "when N doubles (100 -> 200)");
  const std::size_t ns[4] = {50, 100, 100, 200};
  // Use {25,50,100,200} so each step doubles.
  const std::size_t grid[4] = {25, 50, 100, 200};
  (void)ns;
  Counts all[kNumKinds][4];
  for (int k = 0; k < kNumKinds; ++k) {
    for (int i = 0; i < 4; ++i) {
      all[k][i] = measure(kTableKinds[k], grid[i], 1206590.0);
    }
  }
  print_metric("Offline communication per user", &Counts::offline_comm_user,
               all, grid);
  print_metric("Offline computation per user", &Counts::offline_comp_user,
               all, grid);
  print_metric("Online communication per user", &Counts::online_comm_user,
               all, grid);
  print_metric("Online communication at server", &Counts::online_comm_server,
               all, grid);
  print_metric("Reconstruction at server", &Counts::reconstruction, all,
               grid);
  std::printf(
      "\nExpected shape (paper Table 1, s << d):\n"
      "  offline comm (U):  SecAgg O(sN) ~ exp 1, SecAgg+ O(s logN) ~ exp 0,"
      " LightSecAgg O(d) ~ exp 0\n"
      "  offline comp (U):  SecAgg O(dN), SecAgg+ O(d logN), LightSecAgg "
      "O(dN/(U-T)) ~ exp 1 with fixed ratios\n"
      "  online comm (U):   all O(d) ~ exp 0 (LightSecAgg + d/(U-T))\n"
      "  online comm (S):   all O(dN) ~ exp 1\n"
      "  reconstruction (S): SecAgg O(dN^2) ~ exp 2, SecAgg+ O(dN logN) ~ "
      "exp 1+, LightSecAgg O(d U/(U-T)) ~ exp ~1 with a tiny constant*\n"
      "  (*this implementation uses dense Lagrange recombination, O(U d); "
      "see EXPERIMENTS.md note)\n"
      "  FastSecAgg* (extension row, Kadhe et al. 2020): zero offline cost "
      "— but only\n  because the whole model travels as online N^2 share "
      "traffic (O(dN/(U-T)) per\n  user), which cannot overlap training; "
      "recovery matches LightSecAgg's one-shot.\n");
  return 0;
}
