#!/usr/bin/env python3
"""CI gate over BENCH_socket.json (bench_socket --smoke).

Gates the STRUCTURAL invariants of the socket plane rather than raw speed
(CI machines are noisy): zero send-side payload copies on the relay and
full-round paths (frames writev straight from pooled buffers), full rounds
over UDS and TCP bit-identical to the serial Network reference, and a very
loose floor on UDS relay throughput relative to the in-process mailbox
baseline — a wedge detector (event loop spinning, accidental per-frame
syscall storms), not a performance target.

Usage: check_socket_regression.py BENCH_socket.json socket_tolerance.json
"""
import sys

from check_common import Gate


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    gate = Gate(sys.argv[1], sys.argv[2])
    tol = gate.tolerance

    for rec in ("relay_uds", "relay_tcp"):
        gate.require_max(rec, "send_payload_copies",
                         tol["max_send_side_payload_copies"])
    gate.require_min("relay_uds", "vs_inproc_fps_ratio",
                     tol["min_uds_vs_inproc_fps_ratio"])
    for rec in ("rounds_uds", "rounds_tcp"):
        gate.require_min(rec, "bit_identical", 1)
        gate.require_max(rec, "send_payload_copies",
                         tol["max_send_side_payload_copies"])
    return gate.finish("socket-plane")


if __name__ == "__main__":
    sys.exit(main())
