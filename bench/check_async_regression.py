#!/usr/bin/env python3
"""CI gate over BENCH_async.json (bench_async_server --smoke).

Gates on the STRUCTURAL invariants of the unified session runtime rather
than raw speed (CI machines are noisy): async aggregates bit-identical to
the legacy single-threaded drive, zero send-side payload copies, and the
survivor-set decode-plan cache actually hit on repeated cycles. A loose
cycles/s floor catches order-of-magnitude throughput collapses.

Usage: check_async_regression.py BENCH_async.json async_tolerance.json
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        bench = json.load(f)
    with open(sys.argv[2]) as f:
        tol = json.load(f)

    records = {r["name"]: r for r in bench["records"]}
    failures = []

    def check(name, field, ok, shown, rule):
        status = "ok" if ok else "REGRESSION"
        print(f"{name}.{field}: {shown} ({rule}) {status}")
        if not ok:
            failures.append(f"{name}.{field} = {shown} violates {rule}")

    def require_min(name, field, minimum):
        rec = records.get(name)
        if rec is None or field not in rec:
            failures.append(f"missing record {name}.{field}")
            return
        check(name, field, rec[field] >= minimum, f"{rec[field]:.3f}",
              f"min {minimum}")

    def require_max(name, field, maximum):
        rec = records.get(name)
        if rec is None or field not in rec:
            failures.append(f"missing record {name}.{field}")
            return
        check(name, field, rec[field] <= maximum, f"{rec[field]:.3f}",
              f"max {maximum}")

    require_min("async_cycles", "bit_identical", 1)
    require_max("async_cycles", "send_side_payload_copies",
                tol["max_send_side_payload_copies"])
    require_min("async_cycles", "decode_plan_reuses",
                tol["min_decode_plan_reuses"])
    require_min("async_cycles", "sharded_cycles_per_s",
                tol["min_sharded_cycles_per_s"])
    require_min("mixed_drive", "bit_identical", 1)
    require_max("mixed_drive", "send_side_payload_copies",
                tol["max_send_side_payload_copies"])

    if failures:
        print("\nAsync session-runtime regression detected:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nAll async session-runtime gates passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
