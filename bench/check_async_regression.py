#!/usr/bin/env python3
"""CI gate over BENCH_async.json (bench_async_server --smoke).

Gates on the STRUCTURAL invariants of the unified session runtime rather
than raw speed (CI machines are noisy): async aggregates bit-identical to
the legacy single-threaded drive, zero send-side payload copies, and the
survivor-set decode-plan cache actually hit on repeated cycles. A loose
cycles/s floor catches order-of-magnitude throughput collapses.

Usage: check_async_regression.py BENCH_async.json async_tolerance.json
"""
import sys

from check_common import Gate


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    gate = Gate(sys.argv[1], sys.argv[2])
    tol = gate.tolerance

    gate.require_min("async_cycles", "bit_identical", 1)
    gate.require_max("async_cycles", "send_side_payload_copies",
                     tol["max_send_side_payload_copies"])
    gate.require_min("async_cycles", "decode_plan_reuses",
                     tol["min_decode_plan_reuses"])
    gate.require_min("async_cycles", "sharded_cycles_per_s",
                     tol["min_sharded_cycles_per_s"])
    gate.require_min("mixed_drive", "bit_identical", 1)
    gate.require_max("mixed_drive", "send_side_payload_copies",
                     tol["max_send_side_payload_copies"])
    # Mailbox-strategy sweep: ring and mutex-deque must both reproduce the
    # legacy drive; the ratio floor only catches the ring path collapsing.
    gate.require_min("mailbox_strategies", "bit_identical", 1)
    gate.require_min("mailbox_strategies", "ring_vs_mutex",
                     tol["min_ring_vs_mutex"])
    # Steady-state persistent cohorts ([5]): zero-setup invariant — the
    # offline encode runs once per user per cohort epoch and the
    # survivor-set plan is built once (builds track epochs, not rounds),
    # with aggregates bit-identical to the per-round protocol.
    gate.require_min("steady_state", "bit_identical", 1)
    gate.require_max("steady_state", "offline_encodes_per_user",
                     tol["max_steady_state_offline_encodes_per_user"])
    gate.require_max("steady_state", "plan_builds",
                     tol["max_steady_state_plan_builds"])
    return gate.finish("async session-runtime")


if __name__ == "__main__":
    sys.exit(main())
