// Ablation — chunk size in the duplex mask-exchange channel (paper §6:
// "improving the speed of concurrent receiving and sending of chunked
// masks").
//
// During the offline phase a device is simultaneously a producer (its own
// encoded shares going out) and a consumer (peer shares coming in). The §6
// mechanism chunks the payload so both directions make progress at once.
// This bench measures the real effect with threads moving real bytes
// through the in-process DuplexChannel:
//
//   pipelined:  a sender thread streams chunks into the channel while the
//               receiver drains it concurrently — the §6 design;
//   store&fwd:  the whole payload is enqueued before the receiver starts —
//               what a sequential send-then-receive loop degenerates to.
//
// Chunking is what *creates* the pipelining: with chunk == payload the two
// designs coincide, and with very small chunks the per-chunk queue/notify
// overhead eats the gain. The sweep locates the useful middle.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "sys/duplex_channel.h"

namespace {

constexpr std::size_t kPayloadBytes = 64u << 20;  // 64 MiB of shares
constexpr int kReps = 3;

std::vector<std::uint8_t> make_payload() {
  std::vector<std::uint8_t> p(kPayloadBytes);
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = static_cast<std::uint8_t>(i * 131u);
  }
  return p;
}

/// Sender thread streams, receiver drains concurrently.
double pipelined_seconds(const std::vector<std::uint8_t>& payload,
                         std::size_t chunk_bytes) {
  double total = 0;
  for (int r = 0; r < kReps; ++r) {
    lsa::sys::DuplexChannel ch(chunk_bytes, /*service_ns=*/0);
    lsa::common::Stopwatch sw;
    std::thread sender([&] {
      ch.send(payload);
      ch.close();
    });
    auto got = ch.receive_all();
    sender.join();
    total += sw.elapsed_sec();
    volatile auto sink = got[kPayloadBytes / 2];
    (void)sink;
  }
  return total / kReps;
}

/// Whole payload enqueued, then drained — no concurrency between the two.
double store_and_forward_seconds(const std::vector<std::uint8_t>& payload,
                                 std::size_t chunk_bytes) {
  double total = 0;
  for (int r = 0; r < kReps; ++r) {
    lsa::sys::DuplexChannel ch(chunk_bytes, /*service_ns=*/0);
    lsa::common::Stopwatch sw;
    ch.send(payload);
    ch.close();
    auto got = ch.receive_all();
    total += sw.elapsed_sec();
    volatile auto sink = got[kPayloadBytes / 2];
    (void)sink;
  }
  return total / kReps;
}

}  // namespace

int main() {
  using namespace lsa::bench;
  print_header(
      "Ablation — chunk size in the duplex share-exchange channel (§6)\n"
      "64 MiB of encoded shares, real threads, real copies");

  const auto payload = make_payload();
  std::printf("%-12s %10s | %14s %14s | %8s\n", "chunk", "chunks",
              "pipelined(s)", "store&fwd(s)", "speedup");
  for (const std::size_t chunk :
       {std::size_t{16} << 10, std::size_t{256} << 10, std::size_t{2} << 20,
        std::size_t{16} << 20, kPayloadBytes}) {
    const double p = pipelined_seconds(payload, chunk);
    const double s = store_and_forward_seconds(payload, chunk);
    std::printf("%8zu KiB %10zu | %14.4f %14.4f | %7.2fx\n", chunk >> 10,
                (kPayloadBytes + chunk - 1) / chunk, p, s, s / p);
  }
  std::printf(
      "\nReading: mid-sized chunks let the receive path run concurrently\n"
      "with the send path (up to ~2x on two cores); chunk == payload\n"
      "removes the pipelining and the two designs converge; very small\n"
      "chunks spend the win on per-chunk queue/notify overhead. The\n"
      "RoundSimulator's duplex_overlap option applies the measured-style\n"
      "gain analytically in the large-N tables (Figures 6/8/9/10).\n");
  return 0;
}
