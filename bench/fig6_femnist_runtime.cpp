// Figure 6: total running time vs number of users — CNN (McMahan et al.
// 2017) on FEMNIST, d = 1,206,590, local training 22.8 s.
#include "bench_common.h"

int main() {
  lsa::bench::run_runtime_vs_n("Figure 6", "CNN / FEMNIST (d = 1,206,590)",
                               1206590, 22.8);
  return 0;
}
