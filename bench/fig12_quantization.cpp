// Figure 12: accuracy of asynchronous LightSecAgg for different update-
// quantization levels c_l = 2^b. Small c_l loses to rounding error; very
// large c_l loses to finite-field wrap-around once K weighted updates
// accumulate past q/2 — the trade-off the paper tunes to c_l = 2^16.
#include <cstdio>

#include "bench_common.h"
#include "fl/fedbuff.h"
#include "fl/model.h"

namespace {

using namespace lsa::fl;

std::vector<RoundRecord> run_with_cl(const SyntheticDataset& ds,
                                     std::uint64_t c_l, std::size_t rounds) {
  Mlp global(784, 32, 10, 3);
  auto parts = ds.partition_iid(40, 5);
  FedBuffConfig cfg;
  cfg.rounds = rounds;
  cfg.buffer_k = 10;
  cfg.tau_max = 8;
  cfg.sgd = {.epochs = 2, .batch_size = 16, .lr = 0.08};
  cfg.staleness = {lsa::quant::StalenessKind::kPolynomial, 1.0};
  cfg.seed = 31;
  cfg.eval_every = 2;
  cfg.secure = true;
  cfg.c_l = c_l;
  cfg.c_g = 1u << 6;
  cfg.privacy_t = 4;
  cfg.target_u = 32;
  return run_fedbuff(global, ds, parts, cfg);
}

}  // namespace

int main() {
  lsa::bench::print_header(
      "Figure 12 — async LightSecAgg accuracy vs quantization level c_l = "
      "2^b\n(MNIST-shaped task, MLP, K = 10)");
  SyntheticDataset::Config dcfg;
  dcfg.input_dim = 28 * 28;
  dcfg.num_classes = 10;
  dcfg.num_train = 800;
  dcfg.num_test = 200;
  dcfg.class_sep = 1.9;   // harder task: curves separate before saturating
  dcfg.noise = 1.5;
  dcfg.seed = 6;
  dcfg.height = 28;
  dcfg.width = 28;
  auto ds = SyntheticDataset::gaussian_mixture(dcfg);
  const std::size_t rounds = 14;
  const int bits[] = {2, 8, 16, 28};

  std::vector<std::vector<RoundRecord>> curves;
  for (int b : bits) {
    curves.push_back(run_with_cl(ds, 1ull << b, rounds));
  }
  std::printf("%-8s", "round");
  for (int b : bits) std::printf("      c_l=2^%-4d", b);
  std::printf("\n");
  for (std::size_t r = 0; r < rounds; r += 2) {
    std::printf("%-8zu", r);
    for (std::size_t c = 0; c < curves.size(); ++c) {
      std::printf(" %14.3f%%", 100 * curves[c][r].test_accuracy);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper Fig. 12): intermediate c_l (2^16) is best; "
      "tiny c_l\nsuffers rounding error, huge c_l suffers wrap-around "
      "error.\n");
  return 0;
}
