// Ablation — field width: the paper fixes q = 2^32 - 5 ("largest prime in
// 32 bits"). A wider field (Fp61 = 2^61 - 1) doubles every wire payload and
// slows modular multiplication, but buys aggregation head-room (more users
// / coarser c_l before wrap-around). This bench runs the *real* C++ kernels
// in both fields — the substrate numbers a deployment would weigh.
#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "protocol/lightsecagg.h"

namespace {

template <class F>
double round_seconds(std::size_t n, std::size_t t, std::size_t u,
                     std::size_t d, int reps) {
  lsa::protocol::Params p{.num_users = n, .privacy = t, .dropout = n - u,
                          .target_survivors = u, .model_dim = d};
  lsa::protocol::LightSecAgg<F> proto(p, 7);
  lsa::common::Xoshiro256ss rng(8);
  std::vector<std::vector<typename F::rep>> inputs(n);
  for (auto& v : inputs) v = lsa::field::uniform_vector<F>(d, rng);
  std::vector<bool> dropped(n, false);
  dropped[0] = true;

  lsa::common::Stopwatch sw;
  for (int r = 0; r < reps; ++r) {
    auto out = proto.run_round(inputs, dropped);
    volatile auto sink = out[0];
    (void)sink;
  }
  return sw.elapsed_sec() / reps;
}

}  // namespace

int main() {
  using namespace lsa::bench;
  print_header(
      "Ablation — field width: full LightSecAgg rounds, real C++ kernels\n"
      "Fp32 (q = 2^32-5, the paper's field) vs Fp61 (q = 2^61-1)");

  std::printf("%-8s %-8s %-8s | %14s %14s %10s\n", "N", "U", "d",
              "Fp32 round(s)", "Fp61 round(s)", "ratio");
  struct Cfg {
    std::size_t n, t, u, d;
    int reps;
  } cfgs[] = {
      {10, 4, 8, 4096, 5},
      {20, 8, 14, 4096, 5},
      {30, 12, 21, 8192, 3},
      {40, 16, 28, 8192, 3},
  };
  for (const auto& c : cfgs) {
    const double t32 =
        round_seconds<lsa::field::Fp32>(c.n, c.t, c.u, c.d, c.reps);
    const double t61 =
        round_seconds<lsa::field::Fp61>(c.n, c.t, c.u, c.d, c.reps);
    std::printf("%-8zu %-8zu %-8zu | %14.4f %14.4f %9.2fx\n", c.n, c.u, c.d,
                t32, t61, t61 / t32);
  }
  std::printf(
      "\nReading: Fp61 costs ~1.5-3x per round (wider mults, double the "
      "bytes) and\nis only worth it when aggregation head-room binds — "
      "e.g. very large K * c_l\nproducts in the asynchronous setting "
      "(Fig. 12's wrap-around regime).\n");
  return 0;
}
