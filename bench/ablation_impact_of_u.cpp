// Ablation — "Impact of U" (paper §7.2): LightSecAgg's design parameter U
// can be chosen anywhere in (T, N - D]. Larger U shrinks every encoded
// share (segment length d/(U-T)) but makes the one-shot decode combine more
// shares. The paper reports U = floor(0.7N) as the measured optimum for
// p <= 0.3. This bench sweeps U at N = 200, T = 100 and reports the phase
// times, reproducing that interior optimum.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace lsa::bench;
  using Fp = lsa::field::Fp32;
  print_header(
      "Ablation — impact of U (paper §7.2), N = 200, T = 100, d = 1,206,590,"
      "\np = 0.1 (D = 20 dropouts), 320 Mb/s");

  const auto cost = lsa::net::CostModel::paper_stack();
  const auto bw = lsa::net::BandwidthProfile::measured_320mbps();
  const std::size_t n = 200, t = 100;
  const double d_real = 1206590.0;

  std::printf("%-8s %-10s %12s %12s %12s %14s\n", "U", "seg=d/(U-T)",
              "offline_s", "recovery_s", "agg_total_s", "note");
  for (std::size_t u : {101, 110, 120, 130, 140, 150, 160, 170, 180}) {
    const std::size_t d_sim = (u - t) * 16;  // seg granularity negligible
    lsa::protocol::Params params{.num_users = n, .privacy = t,
                                 .dropout = n - u, .target_survivors = u,
                                 .model_dim = d_sim};
    lsa::net::Ledger ledger(n);
    lsa::protocol::LightSecAgg<Fp> proto(params, 3, &ledger);

    lsa::common::Xoshiro256ss rng(4);
    std::vector<std::vector<Fp::rep>> inputs(n);
    for (auto& v : inputs) v = lsa::field::uniform_vector<Fp>(d_sim, rng);
    std::vector<bool> dropped(n, false);
    for (std::size_t k = 0; k < 20; ++k) dropped[10 * k] = true;
    (void)proto.run_round(inputs, dropped);

    lsa::net::RoundSimulator sim(cost, bw, paper_opts());
    const auto rb =
        sim.simulate(ledger, d_real / static_cast<double>(d_sim), 22.8);
    const double agg = rb.offline + rb.upload + rb.recovery;
    const char* note = u == 140 ? "<- paper's optimum (0.7N)"
                      : u == 101 ? "smallest legal (T+1)"
                      : u == 180 ? "largest legal (N-D)"
                                 : "";
    std::printf("%-8zu %-10zu %12.1f %12.1f %12.1f   %s\n", u,
                static_cast<std::size_t>(d_real / double(u - t) + 0.999),
                rb.offline, rb.recovery, agg, note);
  }
  std::printf(
      "\nExpected shape (paper §7.2): small U - T inflates shares (offline "
      "explodes\nnear U = T+1); large U makes each decode combine more "
      "shares. The total is\nminimized at an interior U — the paper "
      "measures ~0.7N.\n");
  return 0;
}
