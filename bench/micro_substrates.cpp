// Micro-benchmarks of the substrate kernels (google-benchmark).
//
// These are the per-element costs that CostModel::calibrate() feeds into
// the timing simulation — run this binary to see what the simulator sees.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <optional>
#include <string>

#include "coding/mask_codec.h"
#include "coding/ntt.h"
#include "coding/poly.h"
#include "common/rng.h"
#include "crypto/chacha20.h"
#include "crypto/key_agreement.h"
#include "crypto/prg.h"
#include "crypto/shamir.h"
#include "field/field_vec.h"
#include "field/flat_matrix.h"
#include "field/fp.h"
#include "field/goldilocks.h"
#include "field/random_field.h"
#include "field/simd/dispatch.h"
#include "field/simd/simd_policy.h"
#include "quant/quantizer.h"
#include "sys/exec_policy.h"
#include "sys/thread_pool.h"

namespace {

using lsa::field::Fp32;
using lsa::field::Fp61;
using lsa::field::Goldilocks;
using rep32 = Fp32::rep;
using repg = Goldilocks::rep;

template <class F>
void BM_FieldMul(benchmark::State& state) {
  lsa::common::Xoshiro256ss rng(1);
  auto a = lsa::field::uniform<F>(rng);
  auto b = lsa::field::uniform<F>(rng);
  for (auto _ : state) {
    a = F::mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldMul<Fp32>);
BENCHMARK(BM_FieldMul<Fp61>);
BENCHMARK(BM_FieldMul<Goldilocks>);  // branch-light reduction vs % above

void BM_NttForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  lsa::common::Xoshiro256ss rng(9);
  auto a = lsa::field::uniform_vector<Goldilocks>(n, rng);
  for (auto _ : state) {
    lsa::coding::ntt_inplace<Goldilocks>(std::span<repg>(a));
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NttForward)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

void BM_PolymulNttVsSchoolbook(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool use_ntt = state.range(1) != 0;
  lsa::common::Xoshiro256ss rng(10);
  const auto a = lsa::field::uniform_vector<Goldilocks>(n, rng);
  const auto b = lsa::field::uniform_vector<Goldilocks>(n, rng);
  for (auto _ : state) {
    auto p = use_ntt
                 ? lsa::coding::polymul_ntt<Goldilocks>(
                       std::span<const repg>(a), std::span<const repg>(b))
                 : lsa::coding::polymul_schoolbook<Goldilocks>(
                       std::span<const repg>(a), std::span<const repg>(b));
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_PolymulNttVsSchoolbook)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({4096, 1});

void BM_FastInterpolation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  lsa::common::Xoshiro256ss rng(11);
  std::vector<repg> xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = Goldilocks::from_u64(i + 1);
  const auto ys = lsa::field::uniform_vector<Goldilocks>(n, rng);
  lsa::coding::SubproductTree<Goldilocks> tree{std::span<const repg>(xs)};
  for (auto _ : state) {
    auto f = tree.interpolate(std::span<const repg>(ys));
    benchmark::DoNotOptimize(f.data());
  }
}
BENCHMARK(BM_FastInterpolation)->Arg(64)->Arg(256)->Arg(1024);

void BM_FieldAddVec(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  lsa::common::Xoshiro256ss rng(2);
  auto a = lsa::field::uniform_vector<Fp32>(n, rng);
  auto b = lsa::field::uniform_vector<Fp32>(n, rng);
  for (auto _ : state) {
    lsa::field::add_inplace<Fp32>(std::span<rep32>(a),
                                  std::span<const rep32>(b));
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FieldAddVec)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_FieldAxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  lsa::common::Xoshiro256ss rng(3);
  auto a = lsa::field::uniform_vector<Fp32>(n, rng);
  auto b = lsa::field::uniform_vector<Fp32>(n, rng);
  for (auto _ : state) {
    lsa::field::axpy_inplace<Fp32>(std::span<rep32>(a), 12345u,
                                   std::span<const rep32>(b));
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FieldAxpy)->Arg(1 << 16)->Arg(1 << 20);

void BM_ChaCha20Block(benchmark::State& state) {
  lsa::crypto::ChaChaKey key{};
  lsa::crypto::ChaChaNonce nonce{};
  std::array<std::uint8_t, 64> out;
  std::uint32_t ctr = 0;
  for (auto _ : state) {
    lsa::crypto::chacha20_block(key, ctr++, nonce, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ChaCha20Block);

void BM_PrgExpandFieldElems(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    lsa::crypto::Prg prg(lsa::crypto::seed_from_u64(7));
    auto v = lsa::field::uniform_vector<Fp32>(n, prg);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PrgExpandFieldElems)->Arg(1 << 14)->Arg(1 << 18);

void BM_DhKeyAgreement(benchmark::State& state) {
  const auto kp = lsa::crypto::generate_keypair(lsa::crypto::seed_from_u64(1));
  const auto other =
      lsa::crypto::generate_keypair(lsa::crypto::seed_from_u64(2));
  for (auto _ : state) {
    auto s = lsa::crypto::shared_secret(kp.secret, other.public_key);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_DhKeyAgreement);

void BM_ShamirShare(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 2 * t + 1;
  lsa::common::Xoshiro256ss rng(4);
  lsa::crypto::ShamirScheme<Fp32> scheme(t, n);
  auto secret = lsa::field::uniform_vector<Fp32>(11, rng);
  for (auto _ : state) {
    auto shares = scheme.share(std::span<const rep32>(secret), rng);
    benchmark::DoNotOptimize(shares.data());
  }
}
BENCHMARK(BM_ShamirShare)->Arg(8)->Arg(32)->Arg(100);

void BM_ShamirReconstruct(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 2 * t + 1;
  lsa::common::Xoshiro256ss rng(5);
  lsa::crypto::ShamirScheme<Fp32> scheme(t, n);
  auto secret = lsa::field::uniform_vector<Fp32>(11, rng);
  auto shares = scheme.share(std::span<const rep32>(secret), rng);
  shares.resize(t + 1);
  for (auto _ : state) {
    auto rec = scheme.reconstruct(shares);
    benchmark::DoNotOptimize(rec.data());
  }
}
BENCHMARK(BM_ShamirReconstruct)->Arg(8)->Arg(32)->Arg(100);

void BM_MaskEncode(benchmark::State& state) {
  // Paper-scale ratios: U = 0.7N, T = 0.5N.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t u = 7 * n / 10, t = n / 2;
  const std::size_t d = 1 << 14;
  lsa::common::Xoshiro256ss rng(6);
  lsa::coding::MaskCodec<Fp32> codec(n, u, t, d);
  auto mask = lsa::field::uniform_vector<Fp32>(d, rng);
  for (auto _ : state) {
    auto shares = codec.encode(std::span<const rep32>(mask), rng);
    benchmark::DoNotOptimize(shares.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(d));
}
BENCHMARK(BM_MaskEncode)->Arg(20)->Arg(50)->Arg(100);

void BM_MaskDecodeAggregate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t u = 7 * n / 10, t = n / 2;
  const std::size_t d = 1 << 14;
  lsa::common::Xoshiro256ss rng(7);
  lsa::coding::MaskCodec<Fp32> codec(n, u, t, d);
  auto mask = lsa::field::uniform_vector<Fp32>(d, rng);
  auto shares = codec.encode(std::span<const rep32>(mask), rng);
  std::vector<std::size_t> owners(u);
  std::vector<std::vector<rep32>> sub;
  for (std::size_t j = 0; j < u; ++j) {
    owners[j] = j;
    sub.push_back(shares[j]);
  }
  for (auto _ : state) {
    auto out = codec.decode_aggregate(owners, sub);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(d));
}
BENCHMARK(BM_MaskDecodeAggregate)->Arg(20)->Arg(50)->Arg(100);

// ---------------------------------------------------------------------------
// Flat-arena engine vs the seed's nested-vector serial path.
//
// The "Seed*" benchmarks reproduce the seed implementation faithfully:
//   * field multiplication via the generic `%` reduction
//     (PrimeField::mul_reference — exactly the seed's mul),
//   * per-user nested vector<vector> share storage,
//   * one modular reduction per term in the encode/decode inner loops.
// The "Flat*" benchmarks run the current engine: Barrett reduction, one
// FlatMatrix arena, fused split-word accumulation kernels, optionally a
// 4-thread pool. Run with --benchmark_format=json to feed the perf
// trajectory; the headline ratio is
//   BM_EncodeDecode_SeedNestedSerial/100/102400 over
//   BM_EncodeDecode_FlatPool4/100/102400.

/// The seed's field: identical layout/constants to PrimeField<Q>, but with
/// the `%`-based product reduction the seed shipped.
template <std::uint64_t Q>
struct SeedRefField {
  using Fast = lsa::field::PrimeField<Q>;
  using rep = typename Fast::rep;
  static constexpr std::uint64_t modulus = Q;
  static constexpr rep zero = 0;
  static constexpr rep one = 1;
  static constexpr std::size_t element_bytes = sizeof(rep);
  static constexpr rep add(rep a, rep b) { return Fast::add(a, b); }
  static constexpr rep sub(rep a, rep b) { return Fast::sub(a, b); }
  static constexpr rep neg(rep a) { return Fast::neg(a); }
  static constexpr rep mul(rep a, rep b) { return Fast::mul_reference(a, b); }
  static constexpr rep pow(rep a, std::uint64_t e) { return Fast::pow(a, e); }
  static rep inv(rep a) { return Fast::inv(a); }
  static constexpr rep from_u64(std::uint64_t v) { return Fast::from_u64(v); }
};
using Fp32Seed = SeedRefField<4294967291ull>;

/// Seed-shape encode: nested segment vectors, one share vector per user,
/// per-term mul/add axpy (the seed's encode_segments loop).
template <class F>
std::vector<std::vector<typename F::rep>> seed_encode(
    std::size_t n, std::size_t u, std::size_t t, std::size_t d,
    std::size_t seg, const std::vector<std::vector<typename F::rep>>& w_cols,
    std::span<const typename F::rep> mask, lsa::common::Xoshiro256ss& rng) {
  using rep = typename F::rep;
  std::vector<std::vector<rep>> segments;
  segments.reserve(u);
  for (std::size_t k = 0; k < u - t; ++k) {
    std::vector<rep> s(seg, F::zero);
    const std::size_t off = k * seg;
    const std::size_t m = std::min(seg, d - std::min(d, off));
    for (std::size_t l = 0; l < m; ++l) s[l] = mask[off + l];
    segments.push_back(std::move(s));
  }
  for (std::size_t k = 0; k < t; ++k) {
    segments.push_back(lsa::field::uniform_vector<F>(seg, rng));
  }
  std::vector<std::vector<rep>> shares(n);
  for (std::size_t j = 0; j < n; ++j) {
    shares[j].assign(seg, F::zero);
    for (std::size_t k = 0; k < u; ++k) {
      const rep c = w_cols[j][k];
      const rep* src = segments[k].data();
      rep* dst = shares[j].data();
      for (std::size_t l = 0; l < seg; ++l) {
        dst[l] = F::add(dst[l], F::mul(c, src[l]));
      }
    }
  }
  return shares;
}

/// Seed-shape one-shot decode: barycentric weights + the seed's blocked
/// per-term GEMM (kBlock = 2048, one reduction per term).
template <class F>
std::vector<typename F::rep> seed_decode(
    std::size_t u, std::size_t t, std::size_t d, std::size_t seg,
    std::span<const typename F::rep> xs,
    std::span<const typename F::rep> betas,
    const std::vector<std::vector<typename F::rep>>& shares) {
  using rep = typename F::rep;
  const auto w = lsa::coding::barycentric_weights<F>(xs, betas.first(u - t));
  constexpr std::size_t kBlock = 2048;
  std::vector<rep> out((u - t) * seg, F::zero);
  for (std::size_t l0 = 0; l0 < seg; l0 += kBlock) {
    const std::size_t l1 = std::min(l0 + kBlock, seg);
    for (std::size_t k = 0; k < u - t; ++k) {
      rep* dst = out.data() + k * seg;
      for (std::size_t j = 0; j < u; ++j) {
        const rep wkj = w[k][j];
        if (wkj == F::zero) continue;
        const rep* src = shares[j].data();
        for (std::size_t l = l0; l < l1; ++l) {
          dst[l] = F::add(dst[l], F::mul(wkj, src[l]));
        }
      }
    }
  }
  out.resize(d);
  return out;
}

/// Shared shapes for the per-user encode + server decode pipeline at the
/// paper's ratios U = 0.7N, T = 0.5N.
struct PipelineShape {
  std::size_t n, u, t, d, seg;
  explicit PipelineShape(const benchmark::State& state)
      : n(static_cast<std::size_t>(state.range(0))),
        u(7 * n / 10),
        t(n / 2),
        d(static_cast<std::size_t>(state.range(1))),
        seg((d + (u - t) - 1) / (u - t)) {}
};

void BM_EncodeDecode_SeedNestedSerial(benchmark::State& state) {
  using F = Fp32Seed;
  const PipelineShape s(state);
  lsa::common::Xoshiro256ss rng(12);
  // The encoding matrix is identical math; reuse the codec's columns.
  lsa::coding::MaskCodec<Fp32> codec(s.n, s.u, s.t, s.d);
  std::vector<std::vector<F::rep>> w_cols(s.n);
  std::vector<F::rep> xs(s.u), betas(s.u);
  for (std::size_t j = 0; j < s.n; ++j) {
    const auto col = codec.encoding_column(j);
    w_cols[j].assign(col.begin(), col.end());
  }
  for (std::size_t k = 0; k < s.u; ++k) {
    betas[k] = static_cast<F::rep>(k + 1);
    xs[k] = static_cast<F::rep>(s.u + 1 + k);  // owners 0..U-1
  }
  const auto mask = lsa::field::uniform_vector<F>(s.d, rng);
  for (auto _ : state) {
    auto shares = seed_encode<F>(s.n, s.u, s.t, s.d, s.seg, w_cols,
                                 std::span<const F::rep>(mask), rng);
    shares.resize(s.u);
    auto out = seed_decode<F>(s.u, s.t, s.d, s.seg,
                              std::span<const F::rep>(xs),
                              std::span<const F::rep>(betas), shares);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(s.d));
}
BENCHMARK(BM_EncodeDecode_SeedNestedSerial)
    ->Args({100, 100 * 1024})
    ->Args({100, 1 << 14})
    ->Unit(benchmark::kMillisecond);

template <int NumThreads>
void BM_EncodeDecode_Flat(benchmark::State& state) {
  using F = Fp32;
  const PipelineShape s(state);
  lsa::common::Xoshiro256ss rng(12);
  lsa::coding::MaskCodec<F> codec(s.n, s.u, s.t, s.d);
  std::optional<lsa::sys::ThreadPool> pool;
  lsa::sys::ExecPolicy pol{};
  if (NumThreads > 1) {
    pool.emplace(NumThreads);
    pol.pool = &*pool;
  }
  const auto mask = lsa::field::uniform_vector<F>(s.d, rng);
  std::vector<std::size_t> owners(s.u);
  for (std::size_t j = 0; j < s.u; ++j) owners[j] = j;
  lsa::field::FlatMatrix<F> arena(s.n, s.seg);
  std::vector<const rep32*> rows(s.u);
  for (auto _ : state) {
    codec.encode_into(std::span<const rep32>(mask), rng, arena, 0, 1,
                      pol.chunk_reps);
    for (std::size_t j = 0; j < s.u; ++j) rows[j] = arena.row_ptr(j);
    auto out = codec.decode_aggregate_rows(
        owners, std::span<const rep32* const>(rows), pol);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(s.d));
}
void BM_EncodeDecode_FlatSerial(benchmark::State& state) {
  BM_EncodeDecode_Flat<1>(state);
}
void BM_EncodeDecode_FlatPool4(benchmark::State& state) {
  BM_EncodeDecode_Flat<4>(state);
}
BENCHMARK(BM_EncodeDecode_FlatSerial)
    ->Args({100, 100 * 1024})
    ->Args({100, 1 << 14})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EncodeDecode_FlatPool4)
    ->Args({100, 100 * 1024})
    ->Args({100, 1 << 14})
    ->Unit(benchmark::kMillisecond);

// Full protocol round (phase 1 encode for all N users + phase 3 responder
// aggregation + one-shot decode) at a reduced shape — the end-to-end
// version of the pipeline benchmarks above.
void BM_RoundSeedNestedSerial(benchmark::State& state) {
  using F = Fp32Seed;
  const PipelineShape s(state);
  lsa::common::Xoshiro256ss rng(13);
  lsa::coding::MaskCodec<Fp32> codec(s.n, s.u, s.t, s.d);
  std::vector<std::vector<F::rep>> w_cols(s.n);
  for (std::size_t j = 0; j < s.n; ++j) {
    const auto col = codec.encoding_column(j);
    w_cols[j].assign(col.begin(), col.end());
  }
  std::vector<F::rep> xs(s.u), betas(s.u);
  for (std::size_t k = 0; k < s.u; ++k) {
    betas[k] = static_cast<F::rep>(k + 1);
    xs[k] = static_cast<F::rep>(s.u + 1 + k);
  }
  std::vector<std::vector<F::rep>> masks(s.n);
  for (auto& m : masks) m = lsa::field::uniform_vector<F>(s.d, rng);
  for (auto _ : state) {
    // held[j][i] = [~z_i]_j — the seed's nested N x N share matrix.
    std::vector<std::vector<std::vector<F::rep>>> held(
        s.n, std::vector<std::vector<F::rep>>(s.n));
    for (std::size_t i = 0; i < s.n; ++i) {
      auto shares = seed_encode<F>(s.n, s.u, s.t, s.d, s.seg, w_cols,
                                   std::span<const F::rep>(masks[i]), rng);
      for (std::size_t j = 0; j < s.n; ++j) held[j][i] = std::move(shares[j]);
    }
    std::vector<std::vector<F::rep>> agg(s.u);
    for (std::size_t j = 0; j < s.u; ++j) {
      agg[j].assign(s.seg, F::zero);
      for (std::size_t i = 0; i < s.n; ++i) {
        for (std::size_t l = 0; l < s.seg; ++l) {
          agg[j][l] = F::add(agg[j][l], held[j][i][l]);
        }
      }
    }
    auto out = seed_decode<F>(s.u, s.t, s.d, s.seg,
                              std::span<const F::rep>(xs),
                              std::span<const F::rep>(betas), agg);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RoundSeedNestedSerial)
    ->Args({50, 1 << 14})
    ->Unit(benchmark::kMillisecond);

template <int NumThreads>
void BM_RoundFlat(benchmark::State& state) {
  using F = Fp32;
  const PipelineShape s(state);
  lsa::common::Xoshiro256ss rng(13);
  lsa::coding::MaskCodec<F> codec(s.n, s.u, s.t, s.d);
  std::optional<lsa::sys::ThreadPool> pool;
  lsa::sys::ExecPolicy pol{};
  if (NumThreads > 1) {
    pool.emplace(NumThreads);
    pol.pool = &*pool;
  }
  lsa::field::FlatMatrix<F> masks(s.n, s.d);
  for (std::size_t i = 0; i < s.n; ++i) {
    lsa::field::fill_uniform<F>(masks.row(i), rng);
  }
  std::vector<std::size_t> owners(s.u);
  for (std::size_t j = 0; j < s.u; ++j) owners[j] = j;
  std::vector<std::uint64_t> noise_seeds(s.n);
  for (auto& v : noise_seeds) v = rng.next_u64();
  lsa::field::FlatMatrix<F> agg(s.u, s.seg);
  for (auto _ : state) {
    auto arena = codec.encode_all(
        masks,
        [&](std::size_t i) {
          return lsa::common::Xoshiro256ss(noise_seeds[i]);
        },
        pol);
    agg.reset(s.u, s.seg);
    pol.run(s.u, [&](std::size_t r) {
      std::vector<const rep32*> rows(s.n);
      for (std::size_t i = 0; i < s.n; ++i) {
        rows[i] = arena.row_ptr(r * s.n + i);
      }
      lsa::field::add_accumulate_blocked<F>(
          agg.row(r), std::span<const rep32* const>(rows), pol.chunk_reps);
    });
    auto out = codec.decode_aggregate(owners, agg, pol);
    benchmark::DoNotOptimize(out.data());
  }
}
void BM_RoundFlatSerial(benchmark::State& state) { BM_RoundFlat<1>(state); }
void BM_RoundFlatPool4(benchmark::State& state) { BM_RoundFlat<4>(state); }
BENCHMARK(BM_RoundFlatSerial)
    ->Args({50, 1 << 14})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RoundFlatPool4)
    ->Args({50, 1 << 14})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// SIMD substrate: the decode plane's two hottest kernels, as forced-scalar
// vs runtime-dispatched pairs. The pair ratio is the per-host vectorization
// win; the selected ISA and lane width are in the benchmark context
// (simd_isa / simd_vector_bytes keys in the JSON output).
// ---------------------------------------------------------------------------

template <bool ForceScalar>
void BM_SimdAxpyGemmPanel(benchmark::State& state) {
  using F = Goldilocks;
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t u = 128;
  lsa::common::Xoshiro256ss rng(14);
  std::vector<repg> coeffs(u);
  std::vector<std::vector<repg>> rows(u);
  std::vector<const repg*> rp(u);
  for (auto& c : coeffs) c = lsa::field::uniform<F>(rng);
  for (std::size_t k = 0; k < u; ++k) {
    rows[k] = lsa::field::uniform_vector<F>(n, rng);
    rp[k] = rows[k].data();
  }
  std::vector<repg> acc(n, F::zero);
  const lsa::field::simd::ScopedSimdPolicy guard(
      ForceScalar ? lsa::field::simd::SimdPolicy::kForceScalar
                  : lsa::field::simd::SimdPolicy::kAuto);
  for (auto _ : state) {
    lsa::field::axpy_accumulate_blocked<F>(std::span<repg>(acc),
                                           std::span<const repg>(coeffs),
                                           std::span<const repg* const>(rp));
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(u * n));
}
void BM_SimdAxpyGemmPanel_Scalar(benchmark::State& state) {
  BM_SimdAxpyGemmPanel<true>(state);
}
void BM_SimdAxpyGemmPanel_Dispatched(benchmark::State& state) {
  BM_SimdAxpyGemmPanel<false>(state);
}
BENCHMARK(BM_SimdAxpyGemmPanel_Scalar)->Arg(1 << 12);
BENCHMARK(BM_SimdAxpyGemmPanel_Dispatched)->Arg(1 << 12);

template <bool ForceScalar>
void BM_SimdNttButterflySoA(benchmark::State& state) {
  const auto log_n = static_cast<unsigned>(state.range(0));
  constexpr std::size_t kLanes = 8;  // decode plane's kLaneBlock
  lsa::coding::NttPlan<Goldilocks> plan(log_n);
  lsa::common::Xoshiro256ss rng(15);
  const auto data = lsa::field::uniform_vector<Goldilocks>(
      (std::size_t{1} << log_n) * kLanes, rng);
  auto buf = data;
  const lsa::field::simd::ScopedSimdPolicy guard(
      ForceScalar ? lsa::field::simd::SimdPolicy::kForceScalar
                  : lsa::field::simd::SimdPolicy::kAuto);
  for (auto _ : state) {
    std::copy(data.begin(), data.end(), buf.begin());
    plan.forward_soa(std::span<repg>(buf), kLanes);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>((std::size_t{1} << log_n) * kLanes));
}
void BM_SimdNttButterflySoA_Scalar(benchmark::State& state) {
  BM_SimdNttButterflySoA<true>(state);
}
void BM_SimdNttButterflySoA_Dispatched(benchmark::State& state) {
  BM_SimdNttButterflySoA<false>(state);
}
BENCHMARK(BM_SimdNttButterflySoA_Scalar)->Arg(10);
BENCHMARK(BM_SimdNttButterflySoA_Dispatched)->Arg(10);

void BM_QuantizeVector(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  lsa::common::Xoshiro256ss rng(8);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.next_gaussian();
  lsa::quant::Quantizer<Fp32> q(1u << 16);
  for (auto _ : state) {
    auto out = q.quantize_vector(std::span<const double>(xs), rng);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QuantizeVector)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace

int main(int argc, char** argv) {
  namespace simd = lsa::field::simd;
  // Selected dispatch, reported once in the context block (and as
  // "simd_isa"/"simd_vector_bytes" keys under "context" in JSON output).
  benchmark::AddCustomContext("simd_isa",
                              simd::level_name(simd::detected_level()));
  benchmark::AddCustomContext(
      "simd_vector_bytes",
      std::to_string(simd::vector_bytes(simd::detected_level())));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
