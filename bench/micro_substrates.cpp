// Micro-benchmarks of the substrate kernels (google-benchmark).
//
// These are the per-element costs that CostModel::calibrate() feeds into
// the timing simulation — run this binary to see what the simulator sees.
#include <benchmark/benchmark.h>

#include "coding/mask_codec.h"
#include "coding/ntt.h"
#include "coding/poly.h"
#include "common/rng.h"
#include "crypto/chacha20.h"
#include "crypto/key_agreement.h"
#include "crypto/prg.h"
#include "crypto/shamir.h"
#include "field/field_vec.h"
#include "field/fp.h"
#include "field/goldilocks.h"
#include "field/random_field.h"
#include "quant/quantizer.h"

namespace {

using lsa::field::Fp32;
using lsa::field::Fp61;
using lsa::field::Goldilocks;
using rep32 = Fp32::rep;
using repg = Goldilocks::rep;

template <class F>
void BM_FieldMul(benchmark::State& state) {
  lsa::common::Xoshiro256ss rng(1);
  auto a = lsa::field::uniform<F>(rng);
  auto b = lsa::field::uniform<F>(rng);
  for (auto _ : state) {
    a = F::mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldMul<Fp32>);
BENCHMARK(BM_FieldMul<Fp61>);
BENCHMARK(BM_FieldMul<Goldilocks>);  // branch-light reduction vs % above

void BM_NttForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  lsa::common::Xoshiro256ss rng(9);
  auto a = lsa::field::uniform_vector<Goldilocks>(n, rng);
  for (auto _ : state) {
    lsa::coding::ntt_inplace<Goldilocks>(std::span<repg>(a));
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NttForward)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

void BM_PolymulNttVsSchoolbook(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool use_ntt = state.range(1) != 0;
  lsa::common::Xoshiro256ss rng(10);
  const auto a = lsa::field::uniform_vector<Goldilocks>(n, rng);
  const auto b = lsa::field::uniform_vector<Goldilocks>(n, rng);
  for (auto _ : state) {
    auto p = use_ntt
                 ? lsa::coding::polymul_ntt<Goldilocks>(
                       std::span<const repg>(a), std::span<const repg>(b))
                 : lsa::coding::polymul_schoolbook<Goldilocks>(
                       std::span<const repg>(a), std::span<const repg>(b));
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_PolymulNttVsSchoolbook)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({4096, 1});

void BM_FastInterpolation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  lsa::common::Xoshiro256ss rng(11);
  std::vector<repg> xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = Goldilocks::from_u64(i + 1);
  const auto ys = lsa::field::uniform_vector<Goldilocks>(n, rng);
  lsa::coding::SubproductTree<Goldilocks> tree{std::span<const repg>(xs)};
  for (auto _ : state) {
    auto f = tree.interpolate(std::span<const repg>(ys));
    benchmark::DoNotOptimize(f.data());
  }
}
BENCHMARK(BM_FastInterpolation)->Arg(64)->Arg(256)->Arg(1024);

void BM_FieldAddVec(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  lsa::common::Xoshiro256ss rng(2);
  auto a = lsa::field::uniform_vector<Fp32>(n, rng);
  auto b = lsa::field::uniform_vector<Fp32>(n, rng);
  for (auto _ : state) {
    lsa::field::add_inplace<Fp32>(std::span<rep32>(a),
                                  std::span<const rep32>(b));
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FieldAddVec)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_FieldAxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  lsa::common::Xoshiro256ss rng(3);
  auto a = lsa::field::uniform_vector<Fp32>(n, rng);
  auto b = lsa::field::uniform_vector<Fp32>(n, rng);
  for (auto _ : state) {
    lsa::field::axpy_inplace<Fp32>(std::span<rep32>(a), 12345u,
                                   std::span<const rep32>(b));
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FieldAxpy)->Arg(1 << 16)->Arg(1 << 20);

void BM_ChaCha20Block(benchmark::State& state) {
  lsa::crypto::ChaChaKey key{};
  lsa::crypto::ChaChaNonce nonce{};
  std::array<std::uint8_t, 64> out;
  std::uint32_t ctr = 0;
  for (auto _ : state) {
    lsa::crypto::chacha20_block(key, ctr++, nonce, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ChaCha20Block);

void BM_PrgExpandFieldElems(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    lsa::crypto::Prg prg(lsa::crypto::seed_from_u64(7));
    auto v = lsa::field::uniform_vector<Fp32>(n, prg);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PrgExpandFieldElems)->Arg(1 << 14)->Arg(1 << 18);

void BM_DhKeyAgreement(benchmark::State& state) {
  const auto kp = lsa::crypto::generate_keypair(lsa::crypto::seed_from_u64(1));
  const auto other =
      lsa::crypto::generate_keypair(lsa::crypto::seed_from_u64(2));
  for (auto _ : state) {
    auto s = lsa::crypto::shared_secret(kp.secret, other.public_key);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_DhKeyAgreement);

void BM_ShamirShare(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 2 * t + 1;
  lsa::common::Xoshiro256ss rng(4);
  lsa::crypto::ShamirScheme<Fp32> scheme(t, n);
  auto secret = lsa::field::uniform_vector<Fp32>(11, rng);
  for (auto _ : state) {
    auto shares = scheme.share(std::span<const rep32>(secret), rng);
    benchmark::DoNotOptimize(shares.data());
  }
}
BENCHMARK(BM_ShamirShare)->Arg(8)->Arg(32)->Arg(100);

void BM_ShamirReconstruct(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 2 * t + 1;
  lsa::common::Xoshiro256ss rng(5);
  lsa::crypto::ShamirScheme<Fp32> scheme(t, n);
  auto secret = lsa::field::uniform_vector<Fp32>(11, rng);
  auto shares = scheme.share(std::span<const rep32>(secret), rng);
  shares.resize(t + 1);
  for (auto _ : state) {
    auto rec = scheme.reconstruct(shares);
    benchmark::DoNotOptimize(rec.data());
  }
}
BENCHMARK(BM_ShamirReconstruct)->Arg(8)->Arg(32)->Arg(100);

void BM_MaskEncode(benchmark::State& state) {
  // Paper-scale ratios: U = 0.7N, T = 0.5N.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t u = 7 * n / 10, t = n / 2;
  const std::size_t d = 1 << 14;
  lsa::common::Xoshiro256ss rng(6);
  lsa::coding::MaskCodec<Fp32> codec(n, u, t, d);
  auto mask = lsa::field::uniform_vector<Fp32>(d, rng);
  for (auto _ : state) {
    auto shares = codec.encode(std::span<const rep32>(mask), rng);
    benchmark::DoNotOptimize(shares.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(d));
}
BENCHMARK(BM_MaskEncode)->Arg(20)->Arg(50)->Arg(100);

void BM_MaskDecodeAggregate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t u = 7 * n / 10, t = n / 2;
  const std::size_t d = 1 << 14;
  lsa::common::Xoshiro256ss rng(7);
  lsa::coding::MaskCodec<Fp32> codec(n, u, t, d);
  auto mask = lsa::field::uniform_vector<Fp32>(d, rng);
  auto shares = codec.encode(std::span<const rep32>(mask), rng);
  std::vector<std::size_t> owners(u);
  std::vector<std::vector<rep32>> sub;
  for (std::size_t j = 0; j < u; ++j) {
    owners[j] = j;
    sub.push_back(shares[j]);
  }
  for (auto _ : state) {
    auto out = codec.decode_aggregate(owners, sub);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(d));
}
BENCHMARK(BM_MaskDecodeAggregate)->Arg(20)->Arg(50)->Arg(100);

void BM_QuantizeVector(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  lsa::common::Xoshiro256ss rng(8);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.next_gaussian();
  lsa::quant::Quantizer<Fp32> q(1u << 16);
  for (auto _ : state) {
    auto out = q.quantize_vector(std::span<const double>(xs), rng);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QuantizeVector)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace

BENCHMARK_MAIN();
