// Ablation — Byzantine-robust aggregation rules under attack (paper §8
// future work, implemented in src/robust/).
//
// Fixed setting: N = 30 users in G = 6 LightSecAgg groups, honest updates
// clustered at 1.0. Sweeps the attacker budget B and the attack kind, and
// reports the L_inf error of each rule's output vs the honest mean — the
// quantity a training loop cares about. Concentrated attackers fill whole
// groups (the favourable case); spread attackers stripe one per group (the
// worst case for group-wise robustness, where *every* group average is
// slightly poisoned and only bounded-influence rules degrade gracefully).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "field/fp.h"
#include "robust/attacks.h"
#include "robust/grouped_secure.h"

namespace {

using F = lsa::field::Fp32;
namespace rb = lsa::robust;

constexpr std::size_t kUsers = 30;
constexpr std::size_t kGroups = 6;
constexpr std::size_t kDim = 64;

double linf_error_vs_honest(rb::Rule rule, std::size_t num_byz,
                            rb::Attack attack, bool spread) {
  rb::GroupedConfig gc;
  gc.num_users = kUsers;
  gc.num_groups = kGroups;
  gc.model_dim = kDim;
  gc.rule = rule;
  gc.rule_opts.trim = 1;
  gc.rule_opts.byzantine = 1;
  gc.seed = 7;
  rb::GroupedSecureAggregator<F> agg(gc);

  lsa::common::Xoshiro256ss rng(11);
  std::vector<std::vector<double>> locals(kUsers,
                                          std::vector<double>(kDim));
  for (auto& l : locals) {
    for (auto& v : l) v = 1.0 + 0.05 * rng.next_gaussian();
  }
  const auto byz =
      rb::byzantine_assignment(kUsers, num_byz, kGroups, spread);
  rb::AttackConfig atk;
  atk.kind = attack;
  atk.scale = 100.0;
  atk.sigma = 100.0;
  for (std::size_t i = 0; i < kUsers; ++i) {
    if (byz[i]) rb::apply_attack(locals[i], atk, rng);
  }

  const std::vector<bool> dropped(kUsers, false);
  const auto out = agg.aggregate(locals, dropped);
  double err = 0;
  for (const double v : out) err = std::max(err, std::abs(v - 1.0));
  return err;
}

void sweep(const char* title, rb::Attack attack, bool spread) {
  std::printf("\n%s\n", title);
  std::printf("%-18s", "rule \\ B");
  for (const std::size_t b : {0, 2, 5, 10}) std::printf(" %11zu", b);
  std::printf("\n");
  for (const auto rule :
       {rb::Rule::kMean, rb::Rule::kCoordinateMedian, rb::Rule::kTrimmedMean,
        rb::Rule::kGeometricMedian, rb::Rule::kMultiKrum}) {
    std::printf("%-18s", std::string(rb::to_string(rule)).c_str());
    for (const std::size_t b : {0, 2, 5, 10}) {
      std::printf(" %11.3f", linf_error_vs_honest(rule, b, attack, spread));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace lsa::bench;
  print_header(
      "Ablation — robust rules x attacks on grouped secure aggregation\n"
      "N = 30 users, G = 6 LightSecAgg groups, honest updates ~ 1.0.\n"
      "Cells: L_inf deviation of the aggregate from the honest mean\n"
      "(0.05-ish = within honest noise; 10+ = poisoned).");

  sweep("Sign-flip x100, concentrated (attackers fill whole groups)",
        rb::Attack::kSignFlip, /*spread=*/false);
  sweep("Sign-flip x100, spread (one attacker striped per group)",
        rb::Attack::kSignFlip, /*spread=*/true);
  sweep("Gaussian noise sigma=100, concentrated", rb::Attack::kGaussian,
        /*spread=*/false);

  std::printf(
      "\nReading: concentrated attackers — the mean is destroyed by B = 2;\n"
      "median and geometric-median hold through B = 10 (2 of 6 groups\n"
      "poisoned, still a minority); trimmed-mean(k=1) and multi-krum(f=1)\n"
      "hold exactly up to their configured budget of 1 bad group (B = 5) and\n"
      "fail at 2, as theory says they should. Spread attackers poison every\n"
      "group average a little: all rules degrade together because group-wise\n"
      "robustness cannot reject a group that is only 20%% corrupt — the\n"
      "privacy/robustness granularity trade-off of the grouped composition.\n");
  return 0;
}
