// Ablation — what integrity costs at recovery time (§8 direction).
//
// LightSecAgg's server can run its one-shot recovery in three integrity
// modes, trading extra responses and decode work for protection against
// falsified aggregated shares:
//
//   fast       U responses,      1 decode            no protection
//   verified   U + 1 responses,  2 decodes + compare detects, aborts
//   corrected  U + 2e responses, BW locate + decode  corrects e falsified
//
// This bench times the real kernels on share matrices at paper-like sizes
// and reports each mode's overhead relative to fast — the table an operator
// consults when deciding how much integrity to buy per round.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "coding/mask_codec.h"
#include "common/timer.h"

namespace {

using F = lsa::field::Fp32;
using rep = F::rep;

struct Inputs {
  lsa::coding::MaskCodec<F> codec;
  std::vector<std::size_t> owners;
  std::vector<std::vector<rep>> shares;

  Inputs(std::size_t n, std::size_t u, std::size_t t, std::size_t d,
         std::uint64_t seed)
      : codec(n, u, t, d) {
    lsa::common::Xoshiro256ss rng(seed);
    const auto mask = lsa::field::uniform_vector<F>(d, rng);
    auto sh = codec.encode(std::span<const rep>(mask), rng);
    for (std::size_t j = 0; j < n; ++j) {
      owners.push_back(j);
      shares.push_back(std::move(sh[j]));
    }
  }

  [[nodiscard]] std::span<const std::size_t> first_owners(
      std::size_t m) const {
    return std::span<const std::size_t>(owners.data(), m);
  }
  [[nodiscard]] std::span<const std::vector<rep>> first_shares(
      std::size_t m) const {
    return std::span<const std::vector<rep>>(shares.data(), m);
  }
};

double time_it(int reps, auto&& fn) {
  lsa::common::Stopwatch sw;
  for (int r = 0; r < reps; ++r) fn();
  return sw.elapsed_sec() / reps;
}

}  // namespace

int main() {
  using namespace lsa::bench;
  print_header(
      "Ablation — recovery integrity modes (real kernels, Fp32)\n"
      "fast = U responses; verified = U+1, double decode;\n"
      "corrected(e) = U+2e, Berlekamp-Welch locate + decode");

  std::printf("%-6s %-6s %-8s | %10s %10s %12s %12s | %9s %9s\n", "N", "U",
              "d", "fast(s)", "verif(s)", "corr e=1(s)", "corr e=2(s)",
              "verif/f", "corr1/f");
  struct Cfg {
    std::size_t n, u, t, d;
    int reps;
  } cfgs[] = {
      {20, 14, 10, 1 << 14, 10},
      {50, 35, 25, 1 << 14, 5},
      {100, 70, 50, 1 << 15, 3},
      {200, 140, 100, 1 << 15, 2},
  };
  for (const auto& c : cfgs) {
    Inputs in(c.n, c.u, c.t, c.d, 5 + c.n);
    const double fast = time_it(c.reps, [&] {
      auto out = in.codec.decode_aggregate(in.first_owners(c.u),
                                           in.first_shares(c.u));
      volatile auto s = out[0];
      (void)s;
    });
    const double verified = time_it(c.reps, [&] {
      auto out = in.codec.decode_aggregate_verified(
          in.first_owners(c.u + 1), in.first_shares(c.u + 1));
      volatile auto s = out[0];
      (void)s;
    });
    const double corr1 = time_it(c.reps, [&] {
      auto out = in.codec.decode_aggregate_corrected(
          in.first_owners(c.u + 2), in.first_shares(c.u + 2));
      volatile auto s = out.aggregate[0];
      (void)s;
    });
    const double corr2 = time_it(c.reps, [&] {
      auto out = in.codec.decode_aggregate_corrected(
          in.first_owners(c.u + 4), in.first_shares(c.u + 4));
      volatile auto s = out.aggregate[0];
      (void)s;
    });
    std::printf("%-6zu %-6zu %-8zu | %10.4f %10.4f %12.4f %12.4f | %8.2fx %8.2fx\n",
                c.n, c.u, c.d, fast, verified, corr1, corr2,
                verified / fast, corr1 / fast);
  }
  std::printf(
      "\nReading: verification costs 2-4x — it IS a second full decode over\n"
      "the d-scaled shares. Correction is surprisingly CHEAPER (1.1-1.2x):\n"
      "its Berlekamp-Welch locator runs once on a single random combination\n"
      "of coordinates — a d-independent O((U+2e)^3) scalar solve — and the\n"
      "d-scaled decode still happens once. It is also strictly stronger\n"
      "(locates and heals rather than just aborting), making corrected the\n"
      "better default whenever U + 2 responders are available. All modes\n"
      "keep the one-shot property: cost is independent of how many users\n"
      "dropped, only of how much integrity redundancy the operator buys.\n");
  return 0;
}
