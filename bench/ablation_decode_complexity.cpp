// Ablation — server decode kernels (paper §5.2, Table 5 "decoding
// complexity at server O(d U logU / (U-T))").
//
// The paper's decode-complexity row assumes *fast* polynomial interpolation.
// This bench runs every implemented kernel on the real C++ field arithmetic
// and locates the crossovers:
//
//   lagrange     O(U^2 (U-T)) scalar + O(U d) vector        (reference)
//   barycentric  O(U^2)       scalar + blocked lazy O(U d)  (GEMM default)
//   ntt          O(d U log^2 U / (U-T)) with per-coordinate Newton
//                inversions and allocations                  (legacy)
//   batched-ntt  same complexity class, but the subproduct trees, Newton
//                inverses, twiddle/operand transforms are built once per
//                (xs, betas) plan and all coordinates stream through
//                (coding/decode_plan.h)                      (the plane)
//
// Part 0 measures the 64-bit axpy kernel substrate itself: per-term
// Barrett/Mersenne/Goldilocks reduction vs Shoup precomputed-operand
// multiplies vs the shipped 3-limb lazy accumulation.
//
// Output: human tables on stdout plus a machine-readable BENCH_decode.json
// (bench_common.h::JsonReport) for the cross-PR perf trajectory and the CI
// regression gate. `--smoke` shrinks the sweep to one CI-sized point;
// `--json <path>` overrides the output file.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "coding/aggregate_decode.h"
#include "coding/mask_codec.h"
#include "coding/ntt.h"
#include "common/timer.h"
#include "field/fp.h"
#include "field/goldilocks.h"
#include "field/simd/dispatch.h"
#include "field/simd/simd_policy.h"

namespace {

using F = lsa::field::Goldilocks;
using rep = F::rep;
using lsa::coding::DecodeStrategy;

struct DecodeInputs {
  std::vector<rep> xs;
  std::vector<rep> betas;
  std::vector<std::vector<rep>> shares;
  std::vector<const rep*> rows;
  std::size_t seg_len = 0;
};

DecodeInputs make_inputs(std::size_t u, std::size_t t, std::size_t d,
                         std::uint64_t seed) {
  DecodeInputs in;
  const std::size_t num_betas = u - t;
  in.seg_len = (d + num_betas - 1) / num_betas;
  in.xs.resize(u);
  in.betas.resize(num_betas);
  for (std::size_t k = 0; k < num_betas; ++k) {
    in.betas[k] = F::from_u64(1 + k);
  }
  for (std::size_t j = 0; j < u; ++j) {
    in.xs[j] = F::from_u64(u + 2 + j);
  }
  lsa::common::Xoshiro256ss rng(seed);
  in.shares.resize(u);
  in.rows.resize(u);
  for (std::size_t j = 0; j < u; ++j) {
    in.shares[j] = lsa::field::uniform_vector<F>(in.seg_len, rng);
    in.rows[j] = in.shares[j].data();
  }
  return in;
}

double time_decode(DecodeStrategy strategy, const DecodeInputs& in,
                   int reps) {
  lsa::common::Stopwatch sw;
  for (int r = 0; r < reps; ++r) {
    const auto out = lsa::coding::decode_eval<F>(
        strategy, in.xs, in.betas,
        std::span<const rep* const>(in.rows), in.seg_len);
    volatile auto sink = out[0];
    (void)sink;
  }
  return sw.elapsed_sec() / reps;
}

/// Streaming time of a REUSED plan (setup excluded — the per-session
/// plan-cache steady state), plus the one-time setup cost.
struct PlanTiming {
  double setup_s = 0.0;
  double stream_s = 0.0;
};

PlanTiming time_plan(DecodeStrategy strategy, const DecodeInputs& in,
                     int reps) {
  lsa::coding::BatchedDecodePlan<F> plan{
      std::span<const rep>(in.xs), std::span<const rep>(in.betas)};
  std::span<const rep* const> rows(in.rows);
  // First run pays the lazy setup.
  auto out = plan.run(strategy, rows, in.seg_len, {});
  PlanTiming pt;
  pt.setup_s = plan.barycentric_setup_seconds() +
               plan.batched_setup_seconds();
  lsa::common::Stopwatch sw;
  for (int r = 0; r < reps; ++r) {
    out = plan.run(strategy, rows, in.seg_len, {});
    volatile auto sink = out[0];
    (void)sink;
  }
  pt.stream_s = sw.elapsed_sec() / reps;
  return pt;
}

/// Forces BOTH lazy components (barycentric weight matrix + batched
/// subproduct-tree plane) of a plan by running each strategy once, and
/// returns the total setup seconds those builds paid.
double force_setup(lsa::coding::BatchedDecodePlan<F>& plan,
                   const DecodeInputs& in) {
  std::span<const rep* const> rows(in.rows);
  auto out = plan.run(DecodeStrategy::kBarycentric, rows, in.seg_len, {});
  out = plan.run(DecodeStrategy::kBatchedNtt, rows, in.seg_len, {});
  volatile auto sink = out[0];
  (void)sink;
  return plan.barycentric_setup_seconds() + plan.batched_setup_seconds();
}

// ---- Part 0: the 64-bit axpy substrate (per-term reduction vs Shoup vs
// the shipped lazy kernel). ----
template <class Field>
void bench_axpy(const char* field_name, std::size_t u, std::size_t n,
                int reps, lsa::bench::JsonReport& json) {
  using frep = typename Field::rep;
  lsa::common::Xoshiro256ss rng(91);
  std::vector<frep> coeffs(u);
  std::vector<std::vector<frep>> rows(u);
  std::vector<const frep*> rp(u);
  for (auto& c : coeffs) c = lsa::field::uniform<Field>(rng);
  for (std::size_t k = 0; k < u; ++k) {
    rows[k] = lsa::field::uniform_vector<Field>(n, rng);
    rp[k] = rows[k].data();
  }
  std::vector<frep> acc(n, Field::zero);

  // Best-of-3 trials per kernel: single timings at this scale jitter by
  // >10% on shared machines, and the CI gate reads these numbers.
  const auto best_of = [&](auto&& body) {
    double best = 1e300;
    for (int trial = 0; trial < 3; ++trial) {
      lsa::common::Stopwatch sw;
      for (int r = 0; r < reps; ++r) body();
      best = std::min(best, sw.elapsed_sec() / reps);
    }
    return best;
  };

  const double t_mul = best_of([&] {
    for (std::size_t k = 0; k < u; ++k) {
      for (std::size_t l = 0; l < n; ++l) {
        acc[l] = Field::add(acc[l], Field::mul(coeffs[k], rp[k][l]));
      }
    }
  });

  const auto shoup =
      lsa::field::shoup_precompute_vec<Field>(std::span<const frep>(coeffs));
  const double t_shoup = best_of([&] {
    lsa::field::axpy_accumulate_blocked_pre<Field>(
        std::span<frep>(acc), std::span<const frep>(coeffs),
        std::span<const frep>(shoup), std::span<const frep* const>(rp));
  });

  const double t_shipped = best_of([&] {
    lsa::field::axpy_accumulate_blocked<Field>(
        std::span<frep>(acc), std::span<const frep>(coeffs),
        std::span<const frep* const>(rp));
  });
  volatile frep sink = acc[0];
  (void)sink;

  std::printf("%-12s | %10.4f %10.4f %10.4f | %9.2fx %9.2fx\n", field_name,
              t_mul, t_shoup, t_shipped, t_mul / t_shoup, t_mul / t_shipped);
  json.add(std::string("axpy_") + field_name,
           {{"u", double(u)},
            {"n", double(n)},
            {"per_term_reduction_s", t_mul},
            {"shoup_s", t_shoup},
            {"shipped_s", t_shipped},
            {"shoup_speedup", t_mul / t_shoup},
            {"shipped_speedup", t_mul / t_shipped}});
}

// ---- Part 0b: the SIMD substrate — the same hot kernels under forced-
// scalar vs runtime-dispatched vector kernels (field/simd/dispatch.h).
// Speedups land in the "simd" JSON record and the CI gate floors the best
// one (check_decode_regression.py; skipped when the host has no vector
// ISA). ----

/// Best-of-5 timing of `body` (reps iterations each) under the policy.
template <class Body>
double time_under_policy(lsa::field::simd::SimdPolicy pol, int reps,
                         Body&& body) {
  lsa::field::simd::ScopedSimdPolicy guard(pol);
  double best = 1e300;
  for (int trial = 0; trial < 5; ++trial) {
    lsa::common::Stopwatch sw;
    for (int r = 0; r < reps; ++r) body();
    best = std::min(best, sw.elapsed_sec() / reps);
  }
  return best;
}

/// Scalar-vs-vector speedup of the fused axpy GEMM panel (the barycentric
/// decode's inner kernel: lazy192 on 64-bit fields, split-word on 32-bit).
template <class Field>
double simd_axpy_speedup(const char* field_name, std::size_t u,
                         std::size_t n, int reps,
                         lsa::bench::JsonReport& json) {
  namespace simd = lsa::field::simd;
  using frep = typename Field::rep;
  lsa::common::Xoshiro256ss rng(137);
  std::vector<frep> coeffs(u);
  std::vector<std::vector<frep>> rows(u);
  std::vector<const frep*> rp(u);
  for (auto& c : coeffs) c = lsa::field::uniform<Field>(rng);
  for (std::size_t k = 0; k < u; ++k) {
    rows[k] = lsa::field::uniform_vector<Field>(n, rng);
    rp[k] = rows[k].data();
  }
  std::vector<frep> acc(n, Field::zero);
  const auto run = [&] {
    lsa::field::axpy_accumulate_blocked<Field>(
        std::span<frep>(acc), std::span<const frep>(coeffs),
        std::span<const frep* const>(rp));
  };
  const double t_scalar =
      time_under_policy(simd::SimdPolicy::kForceScalar, reps, run);
  const double t_vec = time_under_policy(simd::SimdPolicy::kAuto, reps, run);
  volatile frep sink = acc[0];
  (void)sink;
  const double speedup = t_scalar / t_vec;
  std::printf("axpy %-11s | %10.4f %10.4f | %8.2fx\n", field_name, t_scalar,
              t_vec, speedup);
  json.add(std::string("simd_axpy_") + field_name,
           {{"u", double(u)},
            {"n", double(n)},
            {"scalar_s", t_scalar},
            {"simd_s", t_vec},
            {"speedup", speedup}});
  return speedup;
}

/// Scalar-vs-vector speedup of the plan-cached NTT butterfly stream.
double simd_ntt_speedup(unsigned log_n, int reps,
                        lsa::bench::JsonReport& json) {
  namespace simd = lsa::field::simd;
  lsa::coding::NttPlan<F> plan(log_n);
  lsa::common::Xoshiro256ss rng(139);
  const auto data = lsa::field::uniform_vector<F>(std::size_t{1} << log_n,
                                                  rng);
  auto buf = data;
  const auto run = [&] {
    std::copy(data.begin(), data.end(), buf.begin());
    plan.forward(std::span<rep>(buf));
  };
  const double t_scalar =
      time_under_policy(simd::SimdPolicy::kForceScalar, reps, run);
  const double t_vec = time_under_policy(simd::SimdPolicy::kAuto, reps, run);
  volatile rep sink = buf[0];
  (void)sink;
  const double speedup = t_scalar / t_vec;
  std::printf("ntt fwd 2^%-4u | %10.4f %10.4f | %8.2fx\n", log_n, t_scalar,
              t_vec, speedup);
  json.add("simd_ntt_forward",
           {{"log_n", double(log_n)},
            {"scalar_s", t_scalar},
            {"simd_s", t_vec},
            {"speedup", speedup}});
  return speedup;
}

/// Scalar-vs-vector speedup of the lazy192 dot GEMM panel — the base-node
/// matvec at the heart of the SoA decode stream (decode_plan.h's
/// matvec_soa): each row dots `terms` coefficients against a block of
/// kLaneBlock coordinate lanes, accumulating exactly in 192-bit limbs.
double simd_dot_speedup(std::size_t terms, std::size_t lanes,
                        std::size_t nrows, int reps,
                        lsa::bench::JsonReport& json) {
  namespace simd = lsa::field::simd;
  lsa::common::Xoshiro256ss rng(141);
  const auto mat = lsa::field::uniform_vector<F>(nrows * terms, rng);
  const auto x = lsa::field::uniform_vector<F>(terms * lanes, rng);
  std::vector<std::uint64_t> lo(nrows * lanes), mi(nrows * lanes),
      hi(nrows * lanes);
  const auto run = [&] {
    if (const auto* vk = simd::u64_active()) {
      for (std::size_t r = 0; r < nrows; ++r) {
        vk->lazy192_dot(lo.data() + r * lanes, mi.data() + r * lanes,
                        hi.data() + r * lanes, mat.data() + r * terms, 1,
                        x.data(), terms, lanes);
      }
    } else {
      // The same scalar fallback the decode plan uses when no vector
      // kernel table is active.
      for (std::size_t r = 0; r < nrows; ++r) {
        std::uint64_t* l = lo.data() + r * lanes;
        std::uint64_t* m = mi.data() + r * lanes;
        std::uint64_t* h = hi.data() + r * lanes;
        std::fill_n(l, lanes, 0);
        std::fill_n(m, lanes, 0);
        std::fill_n(h, lanes, 0);
        for (std::size_t c = 0; c < terms; ++c) {
          const auto b = mat[r * terms + c];
          for (std::size_t ln = 0; ln < lanes; ++ln) {
            lsa::field::lazy192_accumulate<F>(l[ln], m[ln], h[ln],
                                              x[c * lanes + ln], b);
          }
        }
      }
    }
  };
  const double t_scalar =
      time_under_policy(simd::SimdPolicy::kForceScalar, reps, run);
  const double t_vec = time_under_policy(simd::SimdPolicy::kAuto, reps, run);
  volatile std::uint64_t sink = lo[0];
  (void)sink;
  const double speedup = t_scalar / t_vec;
  std::printf("dot panel %3zux%zu | %10.4f %10.4f | %8.2fx\n", terms, lanes,
              t_scalar, t_vec, speedup);
  json.add("simd_dot_goldilocks",
           {{"terms", double(terms)},
            {"lanes", double(lanes)},
            {"rows", double(nrows)},
            {"scalar_s", t_scalar},
            {"simd_s", t_vec},
            {"speedup", speedup}});
  return speedup;
}

/// Scalar-vs-vector speedup of the SoA butterfly stream: forward_soa walks
/// kLaneBlock coordinate lanes through each butterfly together, exactly as
/// the batched decode plane streams them.
double simd_ntt_soa_speedup(unsigned log_n, std::size_t lanes, int reps,
                            lsa::bench::JsonReport& json) {
  namespace simd = lsa::field::simd;
  lsa::coding::NttPlan<F> plan(log_n);
  lsa::common::Xoshiro256ss rng(143);
  const auto data = lsa::field::uniform_vector<F>(
      (std::size_t{1} << log_n) * lanes, rng);
  auto buf = data;
  const auto run = [&] {
    std::copy(data.begin(), data.end(), buf.begin());
    plan.forward_soa(std::span<rep>(buf), lanes);
  };
  const double t_scalar =
      time_under_policy(simd::SimdPolicy::kForceScalar, reps, run);
  const double t_vec = time_under_policy(simd::SimdPolicy::kAuto, reps, run);
  volatile rep sink = buf[0];
  (void)sink;
  const double speedup = t_scalar / t_vec;
  std::printf("ntt soa 2^%-2ux%zu | %10.4f %10.4f | %8.2fx\n", log_n, lanes,
              t_scalar, t_vec, speedup);
  json.add("simd_ntt_soa",
           {{"log_n", double(log_n)},
            {"lanes", double(lanes)},
            {"scalar_s", t_scalar},
            {"simd_s", t_vec},
            {"speedup", speedup}});
  return speedup;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lsa::bench;
  bool smoke = false;
  std::string json_path = "BENCH_decode.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[a], "--json") == 0 && a + 1 < argc) {
      json_path = argv[++a];
    }
  }
  JsonReport json("decode");

  print_header(
      "Ablation — aggregate-decode kernels (Goldilocks field, real kernels)\n"
      "lagrange = reference; barycentric = lazy GEMM (practical default);\n"
      "ntt = legacy per-coordinate fast path; batched = plan-cached decode\n"
      "plane (the paper's O(U log U) class with setup amortized)");

  std::printf(
      "\nPart 0 — 64-bit axpy substrate, U=128 rows x 32k reps:\n"
      "per-term reduction (Barrett/Mersenne/Goldilocks) vs Shoup\n"
      "precomputed-operand vs the SHIPPED kernel (3-limb lazy\n"
      "accumulation, or Shoup where it measures fastest — Mersenne)\n");
  std::printf("%-12s | %10s %10s %10s | %9s %9s\n", "field", "per-term(s)",
              "shoup(s)", "shipped(s)", "shoup", "shipped");
  {
    const std::size_t an = smoke ? (1u << 13) : (1u << 15);
    const int areps = smoke ? 3 : 10;
    bench_axpy<lsa::field::Goldilocks>("goldilocks", 128, an, areps, json);
    bench_axpy<lsa::field::Fp61>("fp61", 128, an, areps, json);
  }

  {
    namespace simd = lsa::field::simd;
    std::printf(
        "\nPart 0b — SIMD substrate (dispatch: %s, %zu-byte vectors):\n"
        "forced-scalar vs runtime-dispatched vector kernels on the decode\n"
        "plane's hot loops.\n",
        simd::level_name(simd::detected_level()),
        simd::vector_bytes(simd::detected_level()));
    std::printf("%-14s | %10s %10s | %9s\n", "kernel", "scalar(s)",
                "simd(s)", "speedup");
    // Cache-resident shapes: the fused axpy panel streams 128 rows of 4k
    // reps (~4 MB for 64-bit fields, L2/L3-resident across trials) so the
    // measurement is compute-bound like the decode plane's per-segment
    // panels, not DRAM-bandwidth-bound like a one-shot sweep.
    const std::size_t an = 1u << 12;
    const int areps = smoke ? 30 : 100;
    double best = 0.0;
    best = std::max(best, simd_axpy_speedup<lsa::field::Goldilocks>(
                              "goldilocks", 128, an, areps, json));
    best = std::max(best, simd_axpy_speedup<lsa::field::Fp61>(
                              "fp61", 128, an, areps, json));
    best = std::max(best, simd_axpy_speedup<lsa::field::Fp32>(
                              "fp32", 128, an, areps, json));
    best = std::max(best, simd_ntt_speedup(12, smoke ? 30 : 100, json));
    best = std::max(best,
                    simd_dot_speedup(32, 8, 512, smoke ? 100 : 400, json));
    best = std::max(best, simd_ntt_soa_speedup(10, 8, smoke ? 40 : 150,
                                               json));
    std::printf("best kernel speedup: %.2fx\n", best);
    json.add("simd",
             {{"vector_bytes",
               double(simd::vector_bytes(simd::detected_level()))},
              {"best_kernel_speedup", best}},
             {{"isa", std::string(simd::level_name(simd::detected_level()))}});
  }

  std::printf(
      "\nPart 1 — U sweep at T = U/2 (paper's privacy point), d = %s\n",
      smoke ? "2^17 (smoke)" : "2^17");
  std::printf("%-6s %-6s %-6s | %10s %10s %10s %10s %10s | %9s %9s\n", "U",
              "U-T", "seg", "lagr.(s)", "bary(s)", "ntt(s)", "batch(s)",
              "setup(s)", "ntt/batch", "bary/batch");
  const std::size_t d = 1u << 17;
  double min_batched_speedup = 1e300;
  const std::vector<std::size_t> us =
      smoke ? std::vector<std::size_t>{64}
            : std::vector<std::size_t>{64, 128, 256, 512, 1024};
  for (const std::size_t u : us) {
    const std::size_t t = u / 2;
    const auto in = make_inputs(u, t, d, 17 + u);
    const int reps = smoke ? 1 : (u <= 256 ? 3 : 1);
    // The reference kernel is O(U^2 (U-T)) scalar — only timed where it
    // is realistically usable.
    const double tl = (!smoke && u <= 256)
                          ? time_decode(DecodeStrategy::kLagrange, in, 1)
                          : -1.0;
    const double tb = time_decode(DecodeStrategy::kBarycentric, in, reps);
    const double tn = time_decode(DecodeStrategy::kNtt, in, reps);
    const auto pb = time_plan(DecodeStrategy::kBatchedNtt, in, reps);
    const double speedup = tn / pb.stream_s;
    if (in.seg_len >= 4096) {
      min_batched_speedup = std::min(min_batched_speedup, speedup);
    }
    std::printf(
        "%-6zu %-6zu %-6zu | %10s %10.4f %10.4f %10.4f %10.4f | %8.2fx "
        "%8.2fx\n",
        u, u - t, in.seg_len,
        tl >= 0 ? std::to_string(tl).substr(0, 6).c_str() : "(skip)", tb, tn,
        pb.stream_s, pb.setup_s, speedup, tb / pb.stream_s);
    json.add("sweep_u" + std::to_string(u),
             {{"u", double(u)},
              {"num_betas", double(u - t)},
              {"seg_len", double(in.seg_len)},
              {"lagrange_s", tl},
              {"barycentric_s", tb},
              {"ntt_percoord_s", tn},
              {"batched_stream_s", pb.stream_s},
              {"batched_setup_s", pb.setup_s},
              {"batched_vs_ntt_speedup", speedup}});
  }
  json.add("summary", {{"min_batched_vs_ntt_speedup_seg4096plus",
                        min_batched_speedup}});

  if (!smoke) {
    std::printf(
        "\nPart 2 — U-T sweep at U = 512, d = 2^13: the batched kernel's\n"
        "cost is ~flat in U-T while the GEMM's grows linearly — the kAuto\n"
        "crossover (decode_plan.h::resolve) comes from this table.\n");
    std::printf("%-6s %-6s %-6s | %10s %10s %10s | %9s | %s\n", "U", "U-T",
                "seg", "bary(s)", "ntt(s)", "batch(s)", "bary/batch",
                "kAuto picks");
    for (const std::size_t num_seg : {64u, 128u, 256u, 384u}) {
      const std::size_t u = 512;
      const std::size_t t = u - num_seg;
      const auto in = make_inputs(u, t, 1u << 13, 31 + num_seg);
      const double tb = time_decode(DecodeStrategy::kBarycentric, in, 1);
      const double tn = time_decode(DecodeStrategy::kNtt, in, 1);
      const auto pb = time_plan(DecodeStrategy::kBatchedNtt, in, 1);
      lsa::coding::BatchedDecodePlan<F> probe{
          std::span<const rep>(in.xs), std::span<const rep>(in.betas)};
      const auto picked =
          probe.resolve(DecodeStrategy::kAuto, in.seg_len);
      std::printf("%-6zu %-6zu %-6zu | %10.4f %10.4f %10.4f | %8.2fx | %s\n",
                  u, num_seg, in.seg_len, tb, tn, pb.stream_s,
                  tb / pb.stream_s, lsa::coding::to_string(picked));
      json.add("seg_sweep_nb" + std::to_string(num_seg),
               {{"u", double(u)},
                {"num_betas", double(num_seg)},
                {"seg_len", double(in.seg_len)},
                {"barycentric_s", tb},
                {"ntt_percoord_s", tn},
                {"batched_stream_s", pb.stream_s},
                {"auto_picks_batched",
                 picked == DecodeStrategy::kBatchedNtt ? 1.0 : 0.0}});
    }
  }

  // ---- Part 3: plan maintenance — full rebuild vs incremental patch,
  // swept over churn. A steady cohort's survivor set churns by a few
  // points between rounds; the per-session plan cache
  // (coding/mask_codec.h) patches the cached plan
  // (BatchedDecodePlan::patched_from — one-point barycentric weight
  // identities plus the dirtied root-to-leaf subproduct-tree paths)
  // instead of rebuilding it whenever the churn is at most
  // MaskCodec::kMaxPatchChurn. Patch cost is ~linear in churn, rebuild is
  // flat — this sweep records the crossover that sets the bound (speedup
  // ~20/churn, break-even near churn ~20; churn 8 keeps >= 2.7x at every
  // U, hence kMaxPatchChurn = 8). The patched plan is pinned
  // bit-identical to a from-scratch build at churn 2 and at the churn-8
  // bound (hard FAIL on mismatch). U = 512 stays in the smoke sweep: the
  // CI gate floors the churn-2 and churn-8 speedups at U >= 512
  // (decode_tolerance.json).
  std::printf(
      "\nPart 3 — plan maintenance at T = U/2: full setup rebuild vs\n"
      "patched_from across churn (both components, best of 3)\n");
  std::printf("%-6s | %10s | %-40s\n", "U", "build(s)",
              "rebuild/patch speedup by churn");
  double min_patch_speedup = 1e300;
  double min_patch8_speedup = 1e300;
  {
    using Plan = lsa::coding::BatchedDecodePlan<F>;
    using Repl = Plan::PointReplacement;
    const std::vector<std::size_t> pus =
        smoke ? std::vector<std::size_t>{512}
              : std::vector<std::size_t>{64, 256, 512, 1024};
    // Churns past the codec bound (12, 16) document the tail of the
    // crossover curve in the full run; the smoke sweep stops at the
    // bound itself.
    const std::vector<std::size_t> churns =
        smoke ? std::vector<std::size_t>{1, 2, 4, 8}
              : std::vector<std::size_t>{1, 2, 4, 8, 12, 16};
    for (const std::size_t u : pus) {
      const std::size_t t = u / 2;
      const auto in = make_inputs(u, t, 1u << 12, 47 + u);
      const int trials = 3;
      double build_s = 1e300;
      std::shared_ptr<Plan> base;
      for (int tr = 0; tr < trials; ++tr) {
        auto fresh = std::make_shared<Plan>(std::span<const rep>(in.xs),
                                            std::span<const rep>(in.betas));
        build_s = std::min(build_s, force_setup(*fresh, in));
        base = std::move(fresh);
      }
      // Replacement points spread across the leaf range; values clear of
      // the xs range [u+2, 2u+2) and the betas [1, u-t].
      auto replacements = [&](std::size_t churn) {
        std::vector<Repl> out;
        out.reserve(churn);
        for (std::size_t k = 0; k < churn; ++k) {
          out.push_back(
              {(k * u) / churn, F::from_u64(4 * u + 11 + k)});
        }
        return out;
      };
      std::vector<std::pair<std::string, double>> rec{
          {"u", double(u)},
          {"num_betas", double(u - t)},
          {"full_build_s", build_s}};
      std::string row;
      for (const std::size_t churn : churns) {
        if (churn > u / 2) continue;
        const auto repl = replacements(churn);
        double patch_s = 1e300;
        std::shared_ptr<Plan> patched;
        for (int tr = 0; tr < trials; ++tr) {
          lsa::common::Stopwatch sw;
          patched = Plan::patched_from(*base, std::span<const Repl>(repl));
          patch_s = std::min(patch_s, sw.elapsed_sec());
        }
        // Bit-identity at churn 2 and at the kMaxPatchChurn bound: the
        // patched plan must stream exactly the bits a from-scratch plan
        // over the patched points does.
        if (churn == 2 ||
            churn == lsa::coding::MaskCodec<F>::kMaxPatchChurn) {
          auto xs2 = in.xs;
          for (const auto& r : repl) xs2[r.pos] = r.value;
          Plan fresh2{std::span<const rep>(xs2),
                      std::span<const rep>(in.betas)};
          std::span<const rep* const> rows(in.rows);
          for (const auto s :
               {DecodeStrategy::kBarycentric, DecodeStrategy::kBatchedNtt}) {
            if (patched->run(s, rows, in.seg_len, {}) !=
                fresh2.run(s, rows, in.seg_len, {})) {
              std::printf("FAIL: U=%zu churn-%zu patched plan is not "
                          "bit-identical to a fresh build (%s)\n",
                          u, churn, lsa::coding::to_string(s));
              return 1;
            }
          }
        }
        const double speedup = build_s / patch_s;
        const std::string c = std::to_string(churn);
        rec.emplace_back("patch" + c + "_s", patch_s);
        rec.emplace_back("patch" + c + "_vs_rebuild_speedup", speedup);
        rec.emplace_back("patched_nodes_c" + c,
                         double(patched->patched_nodes()));
        if (churn == 2) {
          // Legacy field name the regression gate reads.
          rec.emplace_back("patched_nodes", double(patched->patched_nodes()));
          if (u >= 512) {
            min_patch_speedup = std::min(min_patch_speedup, speedup);
          }
        }
        if (churn == 8 && u >= 512) {
          min_patch8_speedup = std::min(min_patch8_speedup, speedup);
        }
        char buf[32];
        std::snprintf(buf, sizeof buf, " c%zu=%.1fx", churn, speedup);
        row += buf;
      }
      std::printf("%-6zu | %10.5f |%s\n", u, build_s, row.c_str());
      json.add("plan_patch_u" + std::to_string(u), rec);
    }
  }
  // Steady-state proxy through the codec's plan cache: ten decodes of the
  // SAME survivor set must pay exactly one full plan build — the
  // zero-setup invariant persistent cohorts rely on (plan builds track
  // cohort epochs, not rounds).
  std::uint64_t steady_builds = 0, steady_patches = 0;
  {
    const std::size_t cu = 64, ct = cu / 2, cd = 1u << 10;
    lsa::coding::MaskCodec<F> codec(cu + 4, cu, ct, cd);
    const std::size_t seg = (cd + (cu - ct) - 1) / (cu - ct);
    lsa::common::Xoshiro256ss rng(53);
    std::vector<std::vector<rep>> shares(cu);
    std::vector<const rep*> rows(cu);
    std::vector<std::size_t> owners(cu);
    for (std::size_t j = 0; j < cu; ++j) {
      shares[j] = lsa::field::uniform_vector<F>(seg, rng);
      rows[j] = shares[j].data();
      owners[j] = j;
    }
    for (int r = 0; r < 10; ++r) {
      const auto out = codec.decode_aggregate_rows(
          std::span<const std::size_t>(owners),
          std::span<const rep* const>(rows), {},
          DecodeStrategy::kBatchedNtt);
      volatile auto sink = out[0];
      (void)sink;
    }
    const auto st = codec.last_decode_stats();
    steady_builds = st.full_builds;
    steady_patches = st.incremental_patches;
    std::printf("steady state: 10 same-set decodes -> %llu full builds, "
                "%llu patches (plan builds track epochs, not rounds)\n",
                static_cast<unsigned long long>(steady_builds),
                static_cast<unsigned long long>(steady_patches));
    if (steady_builds != 1 || steady_patches != 0 || !st.plan_reused) {
      std::printf("FAIL: steady-state decode re-ran plan setup\n");
      return 1;
    }
  }
  json.add("plan_maintenance",
           {{"min_patch_vs_rebuild_speedup", min_patch_speedup},
            {"min_patch8_vs_rebuild_speedup", min_patch8_speedup},
            {"max_patch_churn", double(lsa::coding::MaskCodec<F>::kMaxPatchChurn)},
            {"steady_state_decodes", 10.0},
            {"steady_state_full_builds", double(steady_builds)},
            {"steady_state_incremental_patches", double(steady_patches)}});

  std::printf(
      "\nReading: the batched plane holds a constant-factor win over the\n"
      "per-coordinate fast path everywhere (precomputed Newton inverses,\n"
      "cached operand transforms, no per-coordinate allocation). Against\n"
      "the lazy GEMM its asymptotic edge needs U-T > ~4.5 log2(U)^2 —\n"
      "thousands-of-users cohorts at the paper's T = U/2 point — which is\n"
      "exactly what DecodeStrategy::kAuto encodes.\n");
  json.write(json_path);
  return 0;
}
