// Ablation — server decode kernels (paper §5.2, Table 5 "decoding
// complexity at server O(d U logU / (U-T))").
//
// The paper's decode-complexity row assumes *fast* polynomial interpolation.
// This bench runs all three implemented kernels on the real C++ field
// arithmetic and locates the crossover:
//
//   lagrange     O(U^2 (U-T)) scalar + O(U d) vector     (reference)
//   barycentric  O(U^2)       scalar + blocked O(U d)    (practical default)
//   ntt          O(d U log^2 U / (U-T)) total            (the paper's class)
//
// Total naive work is O(U d) regardless of the T split, while the fast path
// costs O(c log^2 U / (U-T)) *relative* to it — so the NTT kernel can only
// win when U - T exceeds ~c log^2 U, i.e. cohorts of thousands of users.
// The tables below make that constant c measurable.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "coding/aggregate_decode.h"
#include "common/timer.h"
#include "field/goldilocks.h"

namespace {

using F = lsa::field::Goldilocks;
using rep = F::rep;
using lsa::coding::DecodeStrategy;

struct DecodeInputs {
  std::vector<rep> xs;
  std::vector<rep> betas;
  std::vector<std::vector<rep>> shares;
  std::size_t seg_len = 0;
};

DecodeInputs make_inputs(std::size_t u, std::size_t t, std::size_t d,
                         std::uint64_t seed) {
  DecodeInputs in;
  const std::size_t num_betas = u - t;
  in.seg_len = (d + num_betas - 1) / num_betas;
  in.xs.resize(u);
  in.betas.resize(num_betas);
  for (std::size_t k = 0; k < num_betas; ++k) {
    in.betas[k] = F::from_u64(1 + k);
  }
  for (std::size_t j = 0; j < u; ++j) {
    in.xs[j] = F::from_u64(u + 2 + j);
  }
  lsa::common::Xoshiro256ss rng(seed);
  in.shares.resize(u);
  for (auto& s : in.shares) {
    s = lsa::field::uniform_vector<F>(in.seg_len, rng);
  }
  return in;
}

double time_decode(DecodeStrategy strategy, const DecodeInputs& in,
                   int reps) {
  lsa::common::Stopwatch sw;
  for (int r = 0; r < reps; ++r) {
    const auto out = lsa::coding::decode_eval<F>(
        strategy, in.xs, in.betas, in.shares, in.seg_len);
    volatile auto sink = out[0];
    (void)sink;
  }
  return sw.elapsed_sec() / reps;
}

}  // namespace

int main() {
  using namespace lsa::bench;
  print_header(
      "Ablation — aggregate-decode kernel (Goldilocks field, real kernels)\n"
      "lagrange = reference; barycentric = optimized quadratic;\n"
      "ntt = fast interpolation (the paper's O(U log U) class)");

  std::printf("\nPart 1 — U sweep at T = U/2 (paper's privacy point), d = 2^15\n");
  std::printf("%-8s %-8s %-8s | %12s %12s %12s | %10s\n", "U", "U-T", "seg",
              "lagrange(s)", "barycen.(s)", "ntt(s)", "ntt/bary");
  const std::size_t d = 32768;
  for (const std::size_t u : {64u, 128u, 256u, 512u, 1024u}) {
    const std::size_t t = u / 2;
    const auto in = make_inputs(u, t, d, 17 + u);
    const int reps = u <= 256 ? 3 : 1;
    // The reference kernel is O(U^2 (U-T)) in scalar work — ~27 s at
    // U = 1024 — so it is only timed where it is realistically usable.
    const double tl =
        u <= 512 ? time_decode(DecodeStrategy::kLagrange, in, reps) : -1.0;
    const double tb = time_decode(DecodeStrategy::kBarycentric, in, reps);
    const double tn = time_decode(DecodeStrategy::kNtt, in, reps);
    if (tl >= 0) {
      std::printf("%-8zu %-8zu %-8zu | %12.4f %12.4f %12.4f | %9.2fx\n", u,
                  u - t, in.seg_len, tl, tb, tn, tn / tb);
    } else {
      std::printf("%-8zu %-8zu %-8zu | %12s %12.4f %12.4f | %9.2fx\n", u,
                  u - t, in.seg_len, "(skipped)", tb, tn, tn / tb);
    }
  }

  std::printf(
      "\nPart 2 — segment sweep at U = 512, d = 2^13: the NTT kernel's cost\n"
      "is ~flat in U-T while the quadratic kernels' scalar work grows.\n");
  std::printf("%-8s %-8s %-8s | %12s %12s %12s | %10s\n", "U", "U-T", "seg",
              "lagrange(s)", "barycen.(s)", "ntt(s)", "ntt/bary");
  for (const std::size_t num_seg : {4u, 16u, 64u, 256u}) {
    const std::size_t u = 512;
    const std::size_t t = u - num_seg;
    const auto in = make_inputs(u, t, 8192, 31 + num_seg);
    const double tl = time_decode(DecodeStrategy::kLagrange, in, 1);
    const double tb = time_decode(DecodeStrategy::kBarycentric, in, 1);
    const double tn = time_decode(DecodeStrategy::kNtt, in, 1);
    std::printf("%-8zu %-8zu %-8zu | %12.4f %12.4f %12.4f | %9.2fx\n", u,
                u - t, in.seg_len, tl, tb, tn, tn / tb);
  }

  std::printf(
      "\nReading: barycentric dominates at the paper's scales (N <= 200 =>\n"
      "U <= 140): the quadratic kernel's O(U d) vector work is unavoidable\n"
      "for every strategy, and the fast path's per-coordinate transforms\n"
      "only amortize once U - T > c log^2 U (c measured above). The paper's\n"
      "O(U logU / (U-T) d) decode row is therefore an asymptotic statement;\n"
      "at cross-device scales the right kernel is the blocked quadratic.\n");
  return 0;
}
