// Figure 11: asynchronous LightSecAgg vs FedBuff on MNIST-shaped and
// CIFAR-10-shaped tasks with Constant and Poly staleness weighting —
// the two-dataset version of Fig. 7 (Appendix F.5).
#include <cstdio>

#include "bench_common.h"
#include "fl/cnn.h"
#include "fl/fedbuff.h"

namespace {

using namespace lsa::fl;

struct Curve {
  const char* name;
  std::vector<RoundRecord> records;
};

std::vector<RoundRecord> run_one(Model& global, const SyntheticDataset& ds,
                                 bool secure,
                                 lsa::quant::StalenessKind kind,
                                 std::size_t rounds) {
  auto parts = ds.partition_iid(50, 4);
  FedBuffConfig cfg;
  cfg.rounds = rounds;
  cfg.eta_g = 0.8;  // damped server step stabilizes Constant staleness
  cfg.buffer_k = 10;
  cfg.tau_max = 10;
  cfg.sgd = {.epochs = 2, .batch_size = 16, .lr = 0.05};
  cfg.staleness = {kind, 1.0};
  cfg.seed = 17;
  cfg.eval_every = 2;
  cfg.secure = secure;
  cfg.c_l = 1u << 16;
  cfg.c_g = 1u << 6;
  cfg.privacy_t = 5;
  cfg.target_u = 40;
  return run_fedbuff(global, ds, parts, cfg);
}

void run_dataset(const char* title, const SyntheticDataset& ds,
                 const SmallCnn::Shape& shape, std::size_t rounds) {
  std::printf("\n(%s)\n", title);
  std::vector<Curve> curves;
  for (bool secure : {false, true}) {
    for (auto kind : {lsa::quant::StalenessKind::kConstant,
                      lsa::quant::StalenessKind::kPolynomial}) {
      SmallCnn global(shape, 9);
      Curve c;
      c.name = secure ? (kind == lsa::quant::StalenessKind::kConstant
                             ? "LightSA-Const"
                             : "LightSA-Poly")
                      : (kind == lsa::quant::StalenessKind::kConstant
                             ? "FedBuff-Const"
                             : "FedBuff-Poly");
      c.records = run_one(global, ds, secure, kind, rounds);
      curves.push_back(std::move(c));
    }
  }
  std::printf("%-8s", "round");
  for (const auto& c : curves) std::printf(" %15s", c.name);
  std::printf("\n");
  for (std::size_t r = 0; r < rounds; r += 2) {
    std::printf("%-8zu", r);
    for (const auto& c : curves) {
      std::printf(" %14.3f%%", 100 * c.records[r].test_accuracy);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  lsa::bench::print_header(
      "Figure 11 — async accuracy, MNIST-shaped and CIFAR-10-shaped tasks\n"
      "(LeNet-class CNNs, K = 10, tau_max = 10)");
  auto mnist = SyntheticDataset::mnist_like(1200, 200, 21);
  run_dataset("a: MNIST-shaped", mnist,
              {.channels = 1, .height = 28, .width = 28, .conv1 = 4,
               .conv2 = 8, .hidden = 32, .classes = 10},
              16);
  auto cifar = SyntheticDataset::cifar10_like(1200, 200, 22);
  run_dataset("b: CIFAR-10-shaped", cifar,
              {.channels = 3, .height = 32, .width = 32, .conv1 = 4,
               .conv2 = 8, .hidden = 32, .classes = 10},
              16);
  std::printf(
      "\nExpected shape (paper Fig. 11): secure async LightSecAgg matches "
      "plaintext\nFedBuff on both datasets; quantization noise is "
      "invisible at c_l = 2^16.\n");
  return 0;
}
