// Table 3: LightSecAgg's overlapped-total gain vs SecAgg and SecAgg+ under
// three bandwidth settings — 4G/LTE-A (98 Mb/s), the measured 320 Mb/s
// testbed, and 5G (802 Mb/s). CNN on FEMNIST, N = 200, p = 10%.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace lsa::bench;
  print_header(
      "Table 3 — gain in different bandwidth settings (CNN/FEMNIST, N = 200, "
      "p = 10%, overlapped)");
  const auto cost = lsa::net::CostModel::paper_stack();
  struct Setting {
    const char* name;
    lsa::net::BandwidthProfile bw;
  } settings[] = {
      {"4G (98 Mbps)", lsa::net::BandwidthProfile::lte_4g()},
      {"320 Mbps", lsa::net::BandwidthProfile::measured_320mbps()},
      {"5G (802 Mbps)", lsa::net::BandwidthProfile::nr_5g()},
  };

  std::printf("%-12s", "Protocol");
  for (const auto& s : settings) std::printf(" %16s", s.name);
  std::printf("\n");

  double totals[3][3];
  for (int b = 0; b < 3; ++b) {
    for (int k = 0; k < 3; ++k) {
      Scenario sc;
      sc.protocol = kAllProtocols[k];
      sc.n = 200;
      sc.dropout_rate = 0.1;
      sc.d_real = 1206590;
      sc.train_seconds = 22.8;
      sc.seed = 11;
      totals[b][k] =
          run_scenario(sc, cost, settings[b].bw, paper_opts()).total_overlapped();
    }
  }
  for (int k = 0; k < 2; ++k) {  // rows: gain vs SecAgg, vs SecAgg+
    std::printf("%-12s", kProtocolNames[k]);
    for (int b = 0; b < 3; ++b) {
      std::printf(" %15.1fx", totals[b][k] / totals[b][2]);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper Table 3): gain grows with bandwidth —\n"
      "8.5x -> 12.7x -> 13.5x vs SecAgg and 2.9x -> 4.1x -> 4.4x vs "
      "SecAgg+\n(communication shrinks, so LightSecAgg's computation "
      "advantage dominates).\n");
  return 0;
}
