// Table 5 (Appendix C): detailed complexity comparison, including offline
// storage and the PRG/decoding split at the server. Closed-form element
// counts are evaluated at the concrete experiment parameters and printed
// alongside the paper's asymptotics.
#include <cstdio>

#include "bench_common.h"

namespace {

struct Row {
  const char* metric;
  const char* secagg_asym;
  const char* plus_asym;
  const char* lsa_asym;
  double secagg, plus, lsa;
};

}  // namespace

int main() {
  using namespace lsa::bench;
  print_header(
      "Table 5 (App. C) — detailed complexity, concrete element counts\n"
      "N = 200, T = 100, D = 20 (p = 0.1), U = 140, d = 1,206,590, s = 11 "
      "(32-byte seed packed into Fp32)");

  const double N = 200, T = 100, D = 20, U = 140, d = 1206590, s = 11;
  const double k = 24;  // SecAgg+ graph degree ~ 3 log2 N
  const double surv = N - D;

  const Row rows[] = {
      {"Offline storage per user", "O(d + Ns)", "O(d + s logN)",
       "O(d + N/(U-T) d)",
       d + 2 * N * s, d + 2 * k * s, d + N * d / (U - T)},
      {"Offline communication per user", "O(sN)", "O(s logN)",
       "O(d N/(U-T))", 2 * N * s, 2 * k * s, (N - 1) * d / (U - T)},
      {"Offline computation per user", "O(dN + sN^2)",
       "O(d logN + s log^2 N)", "O(dN logN /(U-T))",
       d * N + s * N * N, d * k + s * k * k, N * U * d / (U - T)},
      {"Online communication per user", "O(d + sN)", "O(d + s logN)",
       "O(d + d/(U-T))", d + s * N, d + s * k, d + d / (U - T)},
      {"Online communication at server", "O(dN + sN^2)",
       "O(dN + sN logN)", "O(dN + d U/(U-T))",
       d * N + s * N * N, d * N + s * N * k, d * N + U * d / (U - T)},
      {"Decoding complexity at server", "O(sN^2)", "O(sN log^2 N)",
       "O(d U log U /(U-T))",
       s * (T + 1) * (surv + D), s * (k / 3 + 1) * (surv + D),
       U * d / (U - T) * (U - T)},
      {"PRG complexity at server", "O(dN^2)", "O(dN logN)", "-",
       d * (surv + D * surv), d * (surv + D * k), 0},
  };

  std::printf("%-34s | %-16s %-20s %-18s | %12s %12s %12s\n", "Metric",
              "SecAgg", "SecAgg+", "LightSecAgg", "SecAgg", "SecAgg+",
              "LightSecAgg");
  for (const auto& r : rows) {
    std::printf("%-34s | %-16s %-20s %-18s | %12.3g %12.3g %12.3g\n",
                r.metric, r.secagg_asym, r.plus_asym, r.lsa_asym, r.secagg,
                r.plus, r.lsa);
  }
  std::printf(
      "\nReading guide (paper App. C): LightSecAgg trades higher offline\n"
      "cost (mask shares of size d/(U-T)) for a server that does NO per-\n"
      "dropout PRG work — its recovery is one MDS decode. SecAgg's server\n"
      "pays O(dN^2) PRG expansions, SecAgg+ O(dN logN).\n");
  return 0;
}
