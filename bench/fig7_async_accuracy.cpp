// Figure 7: accuracy of asynchronous LightSecAgg vs FedBuff on a
// CIFAR-10-shaped task with two staleness strategies — Constant s(tau) = 1
// and Poly s_1(tau) = (1 + tau)^-1. Buffered async setting of App. F.5:
// K = 10, staleness uniform over [0, tau_max = 10].
//
// Substitution note: synthetic CIFAR-shaped data + a compact LeNet-class
// CNN (the paper itself uses "a variant of LeNet-5"); see DESIGN.md.
#include <cstdio>

#include "bench_common.h"
#include "fl/cnn.h"
#include "fl/fedbuff.h"

namespace {

using namespace lsa::fl;

std::vector<RoundRecord> run_curve(bool secure,
                                   lsa::quant::StalenessKind kind,
                                   const SyntheticDataset& ds,
                                   std::size_t rounds) {
  SmallCnn global({.channels = 3, .height = 32, .width = 32, .conv1 = 4,
                   .conv2 = 8, .hidden = 32, .classes = 10},
                  7);
  auto parts = ds.partition_iid(60, 8);
  FedBuffConfig cfg;
  cfg.rounds = rounds;
  cfg.buffer_k = 10;
  cfg.tau_max = 10;
  cfg.eta_g = 1.0;
  cfg.sgd = {.epochs = 2, .batch_size = 16, .lr = 0.06};
  cfg.staleness = {kind, 1.0};
  cfg.seed = 99;  // identical arrival schedule across all four curves
  cfg.eval_every = 2;
  cfg.secure = secure;
  cfg.c_l = 1u << 16;
  cfg.c_g = 1u << 6;
  cfg.privacy_t = 6;
  cfg.target_u = 48;
  return run_fedbuff(global, ds, parts, cfg);
}

}  // namespace

int main() {
  lsa::bench::print_header(
      "Figure 7 — async LightSecAgg vs FedBuff, CIFAR-10-shaped data,\n"
      "LeNet-class CNN, K = 10, tau_max = 10, Constant vs Poly(alpha=1) "
      "staleness");
  auto ds = SyntheticDataset::cifar10_like(960, 240, 5);
  const std::size_t rounds = 24;

  auto fb_const = run_curve(false, lsa::quant::StalenessKind::kConstant, ds,
                            rounds);
  auto fb_poly = run_curve(false, lsa::quant::StalenessKind::kPolynomial, ds,
                           rounds);
  auto lsa_const = run_curve(true, lsa::quant::StalenessKind::kConstant, ds,
                             rounds);
  auto lsa_poly = run_curve(true, lsa::quant::StalenessKind::kPolynomial, ds,
                            rounds);

  std::printf("%-8s %16s %16s %16s %16s\n", "round", "FedBuff-Const",
              "FedBuff-Poly", "LightSA-Const", "LightSA-Poly");
  for (std::size_t r = 0; r < rounds; r += 2) {
    std::printf("%-8zu %15.3f%% %15.3f%% %15.3f%% %15.3f%%\n", r,
                100 * fb_const[r].test_accuracy,
                100 * fb_poly[r].test_accuracy,
                100 * lsa_const[r].test_accuracy,
                100 * lsa_poly[r].test_accuracy);
  }
  std::printf(
      "\nExpected shape (paper Fig. 7): the secure curves track the "
      "plaintext\nFedBuff curves within quantization noise (c_l = 2^16 makes "
      "it negligible);\nstaleness compensation (Poly) helps or matches "
      "Constant.\n");
  return 0;
}
