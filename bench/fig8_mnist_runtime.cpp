// Figure 8: total running time vs number of users — logistic regression on
// MNIST, d = 7,850 (the smallest model: communication and training are
// cheap, so server recovery dominates the baselines even here).
#include "bench_common.h"

int main() {
  lsa::bench::run_runtime_vs_n(
      "Figure 8", "Logistic Regression / MNIST (d = 7,850)", 7850, 3.0);
  return 0;
}
