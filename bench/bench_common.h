// Shared scaffolding for the table/figure reproduction binaries.
//
// Methodology (see EXPERIMENTS.md): every protocol is *functionally
// executed* — real masks, Shamir shares, MDS decoding — at the experiment's
// true N, T, D, U but a reduced model dimension d_sim. The net::Ledger
// records every message and compute unit with a scales-with-d flag, and the
// RoundSimulator extrapolates to the paper's model sizes exactly (all
// d-dependent costs are linear in d by construction). Wall times come from
// the CostModel profile: `paper_stack()` reproduces the magnitudes of the
// paper's Python/EC2 stack (two anchors in Table 4); `calibrate()` measures
// this repository's C++ kernels instead.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/session.h"
#include "field/random_field.h"
#include "net/round_sim.h"
#include "protocol/fastsecagg.h"
#include "protocol/lightsecagg.h"
#include "protocol/secagg.h"
#include "protocol/secagg_plus.h"

namespace lsa::bench {

/// The paper's four learning tasks (Table 2).
struct Task {
  const char* name;
  const char* model;
  std::size_t d;
  double train_seconds;  ///< measured local-training workload (see notes)
};

/// Training times: CNN/FEMNIST is the paper's measured 22.8 s (Table 4);
/// the others are representative workloads chosen so that training-to-
/// aggregation ratios qualitatively match Table 2's description (LR tiny,
/// EfficientNet training-dominant).
inline const Task kTasks[] = {
    {"MNIST", "LogisticRegression", 7850, 3.0},
    {"FEMNIST", "CNN", 1206590, 22.8},
    {"CIFAR-10", "MobileNetV3", 3111462, 85.0},
    {"GLD-23K", "EfficientNet-B0", 5288548, 250.0},
};

struct Scenario {
  ProtocolKind protocol = ProtocolKind::kLightSecAgg;
  std::size_t n = 200;
  double dropout_rate = 0.1;  ///< p
  std::size_t d_real = 1206590;
  double train_seconds = 22.8;
  std::uint64_t seed = 1;
};

/// Paper parameterization: T = N/2; U = 0.7N for p <= 0.3 (the measured
/// optimum), else the largest feasible U = N/2 + 1 (§7.2 "Impact of U").
struct Resolved {
  std::size_t t, u, d_drop;  // d_drop = number of users actually dropped
};

inline Resolved resolve_params(std::size_t n, double p) {
  Resolved r;
  r.t = n / 2;
  const auto by_rate = static_cast<std::size_t>(0.7 * static_cast<double>(n));
  r.u = p <= 0.3 ? std::max(r.t + 1, by_rate) : r.t + 1;
  const std::size_t want_drop =
      static_cast<std::size_t>(p * static_cast<double>(n));
  r.d_drop = std::min(want_drop, n - r.u);  // keep >= U survivors
  return r;
}

/// Functionally executes one round at reduced d_sim and returns the ledger
/// plus full-scale timing.
///
/// SecAgg+ note: its dropout guarantee is probabilistic (paper Remark 4) —
/// an unlucky dropout pattern can strand a neighborhood. Like a real
/// deployment, the harness retries such a failed round with a fresh dropout
/// draw (bounded attempts), which is exactly the "with high probability"
/// regime the paper describes.
inline lsa::net::RoundBreakdown run_scenario(
    const Scenario& sc, const lsa::net::CostModel& cost,
    const lsa::net::BandwidthProfile& bw,
    lsa::net::RoundSimulator::Options opts = {}) {
  using Fp = lsa::field::Fp32;
  const auto rp = resolve_params(sc.n, sc.dropout_rate);
  // d_sim: smallest dimension that exercises every segment (>= U - T),
  // rounded up for a little headroom.
  const std::size_t d_sim = std::max<std::size_t>(rp.u - rp.t, 64);

  lsa::protocol::Params params;
  params.num_users = sc.n;
  params.privacy = rp.t;
  params.dropout = sc.n - rp.u;
  params.target_survivors = rp.u;
  params.model_dim = d_sim;

  lsa::net::Ledger ledger(sc.n);
  std::unique_ptr<lsa::protocol::SecureAggregator<Fp>> proto;
  switch (sc.protocol) {
    case ProtocolKind::kSecAgg:
      proto = std::make_unique<lsa::protocol::SecAgg<Fp>>(params, sc.seed,
                                                          &ledger);
      break;
    case ProtocolKind::kSecAggPlus: {
      // Degree ~4.5 log2 N (Bell et al. size k's constant for concrete
      // security/correctness targets); neighborhood threshold k/6 keeps
      // recovery whp even at p = 0.5 — the probabilistic trade-off of
      // SecAgg+ (paper Remark 4).
      const std::size_t degree =
          lsa::protocol::CommGraph::default_degree(sc.n) * 3 / 2;
      proto = std::make_unique<lsa::protocol::SecAggPlus<Fp>>(
          params, sc.seed, &ledger, degree,
          std::max<std::size_t>(1, degree / 6));
      break;
    }
    case ProtocolKind::kLightSecAgg:
      proto = std::make_unique<lsa::protocol::LightSecAgg<Fp>>(
          params, sc.seed, &ledger);
      break;
    case ProtocolKind::kFastSecAgg:
      proto = std::make_unique<lsa::protocol::FastSecAgg<Fp>>(
          params, sc.seed, &ledger);
      break;
    case ProtocolKind::kZhaoSun:
      throw lsa::ConfigError(
          "run_scenario: ZhaoSun-TTP is exponential in N; see "
          "bench/table6_storage for its dedicated comparison");
  }

  lsa::common::Xoshiro256ss rng(sc.seed ^ 0xbe9c4);
  std::vector<std::vector<Fp::rep>> inputs(sc.n);
  for (auto& v : inputs) v = lsa::field::uniform_vector<Fp>(d_sim, rng);

  constexpr int kMaxAttempts = 16;
  for (int attempt = 0;; ++attempt) {
    std::vector<bool> dropped(sc.n, false);
    for (std::size_t k = 0; k < rp.d_drop; ++k) {
      std::size_t pick;
      do {
        pick = static_cast<std::size_t>(rng.next_below(sc.n));
      } while (dropped[pick]);
      dropped[pick] = true;
    }
    try {
      (void)proto->run_round(inputs, dropped);
      break;
    } catch (const lsa::ProtocolError&) {
      ledger.reset();
      if (sc.protocol != ProtocolKind::kSecAggPlus ||
          attempt + 1 == kMaxAttempts) {
        throw;
      }
    }
  }

  lsa::net::RoundSimulator sim(cost, bw, opts);
  return sim.simulate(ledger,
                      static_cast<double>(sc.d_real) /
                          static_cast<double>(d_sim),
                      sc.train_seconds);
}

inline const char* kProtocolNames[] = {"SecAgg", "SecAgg+", "LightSecAgg"};
inline const ProtocolKind kAllProtocols[] = {ProtocolKind::kSecAgg,
                                             ProtocolKind::kSecAggPlus,
                                             ProtocolKind::kLightSecAgg};

/// Fixed per-message RPC overhead. Zero by default: the paper's measured
/// MNIST gains (6.7x at d = 7,850, Table 2) imply its messaging overhead is
/// negligible — a large per-message cost would flatten the small-model gain
/// to ~1x. The knob remains for ablation (see EXPERIMENTS.md).
inline constexpr double kPaperMsgOverheadS = 0.0;

/// RoundSimulator options used by all paper_stack table/figure benches:
/// duplex chunked send/recv always on (it is part of the paper's system,
/// §6) — the non-overlapped/overlapped distinction is offline ∥ training,
/// chosen via RoundBreakdown::total_*().
[[nodiscard]] inline lsa::net::RoundSimulator::Options paper_opts() {
  lsa::net::RoundSimulator::Options o;
  o.duplex_overlap = true;
  o.per_msg_overhead_s = kPaperMsgOverheadS;
  return o;
}

/// Machine-readable bench output: one {"bench": ..., "records": [...]}
/// JSON object per file, each record a name plus a flat map of numeric
/// fields. CI archives these files (BENCH_decode.json, BENCH_transport.json)
/// so the perf trajectory is tracked across PRs, and the Release smoke step
/// gates on them (bench/check_decode_regression.py).
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  void add(std::string name,
           std::vector<std::pair<std::string, double>> fields) {
    records_.push_back({std::move(name), std::move(fields), {}});
  }

  /// Record with string-valued fields alongside the numeric ones (e.g. the
  /// SIMD dispatch report: {"isa": "avx512"}). Strings are written as JSON
  /// string literals; keep values to plain identifiers (no escaping done).
  void add(std::string name,
           std::vector<std::pair<std::string, double>> fields,
           std::vector<std::pair<std::string, std::string>> strings) {
    records_.push_back({std::move(name), std::move(fields),
                        std::move(strings)});
  }

  /// Writes the report; returns false (with a note on stderr) on I/O
  /// failure so benches can keep printing their tables regardless.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\"bench\": \"%s\", \"records\": [", bench_.c_str());
    for (std::size_t r = 0; r < records_.size(); ++r) {
      std::fprintf(f, "%s\n  {\"name\": \"%s\"", r == 0 ? "" : ",",
                   records_[r].name.c_str());
      for (const auto& [key, value] : records_[r].strings) {
        std::fprintf(f, ", \"%s\": \"%s\"", key.c_str(), value.c_str());
      }
      for (const auto& [key, value] : records_[r].fields) {
        std::fprintf(f, ", \"%s\": %.17g", key.c_str(), value);
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    std::printf("\n[json] wrote %s (%zu records)\n", path.c_str(),
                records_.size());
    return true;
  }

 private:
  struct Record {
    std::string name;
    std::vector<std::pair<std::string, double>> fields;
    std::vector<std::pair<std::string, std::string>> strings;
  };
  std::string bench_;
  std::vector<Record> records_;
};

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Shared driver for Figures 6 / 8 / 9 / 10: total running time of the three
/// protocols as N grows, for dropout rates p in {0.1, 0.3, 0.5}, in both
/// the non-overlapped and overlapped implementations.
inline void run_runtime_vs_n(const char* figure, const char* task_name,
                             std::size_t d_real, double train_seconds) {
  const auto cost = lsa::net::CostModel::paper_stack();
  const auto bw = lsa::net::BandwidthProfile::measured_320mbps();
  const std::size_t ns[] = {20, 50, 100, 200};
  const double rates[] = {0.1, 0.3, 0.5};

  print_header(std::string(figure) + " — total running time (sec) vs N, " +
               task_name);
  for (bool overlapped : {false, true}) {
    std::printf("\n(%s)\n", overlapped ? "b: overlapped" : "a: non-overlapped");
    std::printf("%-12s %-6s", "Protocol", "p");
    for (auto n : ns) std::printf(" %9s%-3zu", "N=", n);
    std::printf("\n");
    for (auto kind : kAllProtocols) {
      for (double p : rates) {
        std::printf("%-12s %-6.1f", kProtocolNames[static_cast<int>(kind)],
                    p);
        for (auto n : ns) {
          Scenario sc;
          sc.protocol = kind;
          sc.n = n;
          sc.dropout_rate = p;
          sc.d_real = d_real;
          sc.train_seconds = train_seconds;
          sc.seed = 1000 + n;
          const auto rb = run_scenario(sc, cost, bw, paper_opts());
          std::printf(" %12.1f", overlapped ? rb.total_overlapped()
                                            : rb.total_nonoverlapped());
        }
        std::printf("\n");
      }
    }
  }
  std::printf(
      "\nExpected shape (paper Fig. 6/8/9/10): SecAgg grows ~quadratically "
      "in N\nand steeply with p; SecAgg+ sub-quadratically; LightSecAgg "
      "stays nearly\nflat in N, with p = 0.1 and p = 0.3 almost identical "
      "(U = 0.7N optimum)\nand p = 0.5 moderately slower (U forced to N/2 + "
      "1).\n");
}

}  // namespace lsa::bench
