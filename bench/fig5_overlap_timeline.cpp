// Figure 5: timing diagram of a single FL round with the offline phase
// either serialized with training (a) or overlapped with it (b) — for
// LightSecAgg and SecAgg+ training MobileNetV3 on a CIFAR-100-class
// workload. Also demonstrates the *real* overlap machinery (sys/overlap.h)
// by concurrently running actual mask encoding and actual CNN training.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "coding/mask_codec.h"
#include "fl/cnn.h"
#include "fl/dataset.h"
#include "fl/sgd.h"
#include "sys/overlap.h"

namespace {
using namespace lsa::bench;

void draw_bar(const char* label, double start, double len, double scale) {
  const int pad = static_cast<int>(start * scale);
  const int width = std::max(1, static_cast<int>(len * scale));
  std::printf("  %-10s |%*s%s| %.1fs\n", label, pad, "",
              std::string(width, '#').c_str(), len);
}

void timeline(const char* proto_name, const lsa::net::RoundBreakdown& rb) {
  const double total_seq = rb.total_nonoverlapped();
  const double scale = 56.0 / total_seq;

  std::printf("\n%s — (a) non-overlapped, total %.1f s\n", proto_name,
              total_seq);
  double t0 = 0;
  draw_bar("offline", t0, rb.offline, scale);
  t0 += rb.offline;
  draw_bar("training", t0, rb.training, scale);
  t0 += rb.training;
  draw_bar("upload", t0, rb.upload, scale);
  t0 += rb.upload;
  draw_bar("recovery", t0, rb.recovery, scale);

  std::printf("%s — (b) overlapped, total %.1f s\n", proto_name,
              rb.total_overlapped());
  draw_bar("offline", 0, rb.offline, scale);
  draw_bar("training", 0, rb.training, scale);
  const double head = std::max(rb.offline, rb.training);
  draw_bar("upload", head, rb.upload, scale);
  draw_bar("recovery", head + rb.upload, rb.recovery, scale);
}

}  // namespace

int main() {
  using namespace lsa::bench;
  print_header(
      "Figure 5 — timing diagram of one FL round, MobileNetV3 / "
      "CIFAR-100-class workload\n(offline ∥ training overlap, §6)");

  const auto cost = lsa::net::CostModel::paper_stack();
  const auto bw = lsa::net::BandwidthProfile::measured_320mbps();
  for (auto kind :
       {lsa::ProtocolKind::kLightSecAgg, lsa::ProtocolKind::kSecAggPlus}) {
    Scenario sc;
    sc.protocol = kind;
    sc.n = 200;
    sc.dropout_rate = 0.1;
    sc.d_real = 3111462;
    sc.train_seconds = 85.0;
    const auto rb = run_scenario(sc, cost, bw, paper_opts());
    timeline(kProtocolNames[static_cast<int>(kind)], rb);
  }

  // Real concurrent execution at laptop scale: train a CNN while encoding
  // masks for the same round (the mechanism the figure illustrates).
  std::printf("\nLive demo — real CNN training ∥ real mask encoding:\n");
  auto ds = lsa::fl::SyntheticDataset::cifar10_like(96, 16, 1);
  lsa::fl::SmallCnn cnn({.channels = 3, .height = 32, .width = 32,
                         .conv1 = 6, .conv2 = 16, .hidden = 64,
                         .classes = 10},
                        2);
  std::vector<std::size_t> idx(ds.train().size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;

  lsa::coding::MaskCodec<lsa::field::Fp32> codec(/*N=*/60, /*U=*/42,
                                                 /*T=*/30, cnn.dim());
  lsa::common::Xoshiro256ss rng(3);
  auto mask = lsa::field::uniform_vector<lsa::field::Fp32>(cnn.dim(), rng);

  const auto t = lsa::sys::run_overlapped(
      [&] {
        lsa::common::Xoshiro256ss train_rng(4);
        (void)lsa::fl::local_sgd(cnn, ds.train(), idx,
                                 {.epochs = 2, .batch_size = 16, .lr = 0.05},
                                 train_rng);
      },
      [&] {
        lsa::common::Xoshiro256ss noise_rng(5);
        (void)codec.encode(
            std::span<const lsa::field::Fp32::rep>(mask), noise_rng);
      });
  std::printf(
      "  training alone: %.2f s, offline encode alone: %.2f s\n"
      "  sequential: %.2f s, overlapped wall time: %.2f s -> speedup "
      "%.2fx\n",
      t.training_s, t.offline_s, t.sequential_total_s(),
      t.overlapped_total_s, t.speedup());
  std::printf(
      "\nExpected shape (paper Fig. 5): overlapping hides the offline phase "
      "behind\ntraining; the overlapped round ends ~offline-length earlier.\n");
  return 0;
}
