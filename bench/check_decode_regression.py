#!/usr/bin/env python3
"""CI gate over BENCH_decode.json (ablation_decode_complexity --smoke).

Compares the recorded speedups against the checked-in tolerances in
bench/decode_tolerance.json and exits non-zero on regression. Tolerances
are deliberately loose relative to the measured numbers (CI machines are
noisy); they exist to catch order-of-magnitude regressions in the decode
plane, not single-digit drift.

Usage: check_decode_regression.py BENCH_decode.json decode_tolerance.json
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        bench = json.load(f)
    with open(sys.argv[2]) as f:
        tol = json.load(f)

    records = {r["name"]: r for r in bench["records"]}
    failures = []

    def require(name, field, minimum):
        rec = records.get(name)
        if rec is None or field not in rec:
            failures.append(f"missing record {name}.{field}")
            return
        value = rec[field]
        status = "ok" if value >= minimum else "REGRESSION"
        print(f"{name}.{field}: {value:.3f} (min {minimum}) {status}")
        if value < minimum:
            failures.append(f"{name}.{field} = {value:.3f} < {minimum}")

    require("summary", "min_batched_vs_ntt_speedup_seg4096plus",
            tol["min_batched_vs_ntt_speedup"])
    require("axpy_goldilocks", "shoup_speedup",
            tol["min_shoup_axpy_speedup_goldilocks"])
    require("axpy_fp61", "shoup_speedup", tol["min_shoup_axpy_speedup_fp61"])
    require("axpy_goldilocks", "shipped_speedup",
            tol["min_shipped_axpy_speedup_goldilocks"])
    require("axpy_fp61", "shipped_speedup",
            tol["min_shipped_axpy_speedup_fp61"])

    if failures:
        print("\nDecode-plane perf regression detected:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nAll decode-plane perf gates passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
