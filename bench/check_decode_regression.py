#!/usr/bin/env python3
"""CI gate over BENCH_decode.json (ablation_decode_complexity --smoke).

Compares the recorded speedups against the checked-in tolerances in
bench/decode_tolerance.json and exits non-zero on regression. Tolerances
are deliberately loose relative to the measured numbers (CI machines are
noisy); they exist to catch order-of-magnitude regressions in the decode
plane, not single-digit drift.

Usage: check_decode_regression.py BENCH_decode.json decode_tolerance.json
"""
import sys

from check_common import Gate


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    gate = Gate(sys.argv[1], sys.argv[2])
    tol = gate.tolerance

    gate.require_min("summary", "min_batched_vs_ntt_speedup_seg4096plus",
                     tol["min_batched_vs_ntt_speedup"])
    gate.require_min("axpy_goldilocks", "shoup_speedup",
                     tol["min_shoup_axpy_speedup_goldilocks"])
    gate.require_min("axpy_fp61", "shoup_speedup",
                     tol["min_shoup_axpy_speedup_fp61"])
    gate.require_min("axpy_goldilocks", "shipped_speedup",
                     tol["min_shipped_axpy_speedup_goldilocks"])
    gate.require_min("axpy_fp61", "shipped_speedup",
                     tol["min_shipped_axpy_speedup_fp61"])

    # Plan maintenance (Part 3): small-churn survivor sets must patch the
    # cached plan meaningfully faster than a full rebuild at U >= 512, and
    # the steady state must pay exactly one full build for repeated
    # decodes of the same survivor set (builds track epochs, not rounds).
    gate.require_min("plan_maintenance", "min_patch_vs_rebuild_speedup",
                     tol["min_patch_vs_rebuild_speedup"])
    gate.require_min("plan_maintenance", "min_patch8_vs_rebuild_speedup",
                     tol["min_patch8_vs_rebuild_speedup"])
    gate.require_max("plan_maintenance", "steady_state_full_builds",
                     tol["max_steady_state_full_builds"])

    # SIMD substrate: floor the best scalar-vs-vector kernel speedup, but
    # skip (don't fail) on hosts whose runtime dispatch resolved to scalar
    # — there is nothing to compare against without AVX2/AVX-512/NEON.
    simd = gate.records.get("simd")
    if simd is not None and simd.get("isa") != "scalar":
        gate.require_min("simd", "best_kernel_speedup",
                         tol["min_simd_best_kernel_speedup"])
    else:
        print("skip: simd gate (runtime dispatch is scalar on this host)")
    return gate.finish("decode-plane perf")


if __name__ == "__main__":
    sys.exit(main())
