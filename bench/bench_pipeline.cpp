// Pipelined round execution: depth-2 stage overlap vs the depth-1 serial
// reference through the sharded session runtime.
//
// The gated shape is latency-bound: SessionConfig's simulated WAN stage
// delays are symmetric, so T_offline ~= T_online — the regime where
// LightSecAgg's model-independent offline phase (mask generation +
// flat-arena encode + share distribution) can hide almost entirely behind
// the previous round's fan-in + decode. Measurements:
//
//   1. rounds/s of the same queued workload at Params::pipeline = 1 (the
//      tested serial reference) vs pipeline = 2 (stage-granular waves),
//      with every depth-2 aggregate checked bit-identical to its depth-1
//      counterpart AND to the elementwise model sum — a hard check, not a
//      tolerance;
//   2. pipeline-telemetry honesty: the single-session wave schedule is
//      deterministic, so rounds-in-flight must be exactly 2 and the
//      online-only tail must be exactly 1 stall; the overlap ratio
//      (offline_hidden_s / offline_stage_s) is gated;
//   3. an undelayed compute-only point (informational, not gated): on a
//      single-core host the overlap win comes from latency hiding, and
//      this point shows what pure compute ∥ compute contributes.
//
// Usage: bench_pipeline [N] [d] [rounds] [delay_ms] [--smoke] [--json <path>]
// Defaults: 24 8192 12 5; --smoke shrinks to a CI-sized point and writes
// BENCH_pipeline.json for the regression gate (check_pipeline_regression.py).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "field/field_vec.h"
#include "field/random_field.h"
#include "protocol/params.h"
#include "server/aggregation_server.h"
#include "sys/thread_pool.h"

namespace {

using lsa::field::Fp32;
using rep = Fp32::rep;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<std::vector<rep>> random_models(std::size_t n, std::size_t d,
                                            std::uint64_t seed) {
  lsa::common::Xoshiro256ss rng(seed);
  std::vector<std::vector<rep>> models(n);
  for (auto& m : models) m = lsa::field::uniform_vector<Fp32>(d, rng);
  return models;
}

std::vector<rep> model_sum(const std::vector<std::vector<rep>>& models) {
  std::vector<rep> acc(models[0].size(), Fp32::zero);
  for (const auto& m : models) {
    lsa::field::add_inplace<Fp32>(std::span<rep>(acc),
                                  std::span<const rep>(m));
  }
  return acc;
}

struct RunResult {
  std::vector<std::vector<rep>> aggregates;
  double seconds = 0.0;
  lsa::server::SessionStats stats;
};

/// Queues `rounds` rounds on ONE session and drives them to completion,
/// timing the whole drive. Depth and the simulated per-stage WAN delay are
/// the only knobs that differ between the compared runs.
RunResult run_at_depth(const lsa::protocol::Params& base,
                       std::size_t pool_threads, std::size_t depth,
                       double stage_delay_s,
                       const std::vector<std::vector<std::vector<rep>>>&
                           model_sets) {
  lsa::sys::ThreadPool pool(pool_threads);
  lsa::server::AggregationServer server(&pool);
  auto pp = base;
  pp.exec.pool = &pool;
  pp.pipeline = depth;
  lsa::server::SessionConfig cfg{.params = pp, .seed = 11};
  cfg.offline_stage_delay_s = stage_delay_s;
  cfg.online_stage_delay_s = stage_delay_s;
  const auto id = server.open_session(cfg);

  std::vector<lsa::server::AggregationServer::RoundWork> works;
  for (std::size_t r = 0; r < model_sets.size(); ++r) {
    works.push_back({id, r, &model_sets[r], {}});
  }
  RunResult out;
  const auto t0 = Clock::now();
  out.aggregates = server.run_rounds(works);
  out.seconds = seconds_since(t0);
  out.stats = server.session(id).stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 24, d = 8192, rounds = 12, delay_ms = 5;
  bool smoke = false;
  const char* json_path = "BENCH_pipeline.json";
  std::size_t pos = 0;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[a], "--json") == 0 && a + 1 < argc) {
      json_path = argv[++a];
    } else if (argv[a][0] == '-') {
      std::fprintf(stderr, "unknown flag %s (usage: bench_pipeline "
                   "[N] [d] [rounds] [delay_ms] [--smoke] "
                   "[--json <path>])\n", argv[a]);
      return 2;
    } else {
      char* end = nullptr;
      const std::size_t v = std::strtoull(argv[a], &end, 10);
      if (end == argv[a] || *end != '\0' || v == 0) {
        std::fprintf(stderr, "bad positional argument %s\n", argv[a]);
        return 2;
      }
      if (pos == 0) n = v;
      if (pos == 1) d = v;
      if (pos == 2) rounds = v;
      if (pos == 3) delay_ms = v;
      ++pos;
    }
  }
  if (smoke && pos == 0) {
    n = 12;
    d = 2048;
    rounds = 8;
    delay_ms = 3;
  }
  const double delay_s = double(delay_ms) * 1e-3;

  lsa::protocol::Params params;
  params.num_users = n;
  params.privacy = std::max<std::size_t>(1, n / 10);
  params.dropout = n - (n * 8) / 10;
  params.target_survivors = (n * 8) / 10;
  params.model_dim = d;
  const std::size_t hw =
      std::max<std::size_t>(2, std::thread::hardware_concurrency());

  lsa::bench::JsonReport json("pipeline");
  lsa::bench::print_header(
      "Pipelined rounds: depth-2 stage overlap vs the depth-1 reference");
  std::printf("N=%zu d=%zu U=%zu, %zu rounds, %zu ms per stage "
              "(T_offline ~= T_online), %zu hw threads%s\n",
              n, d, params.target_survivors, rounds, delay_ms, hw,
              smoke ? " (smoke)" : "");

  std::vector<std::vector<std::vector<rep>>> model_sets;
  model_sets.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    model_sets.push_back(random_models(n, d, 4200 + r));
  }

  // [1] Latency-bound shape: identical queued workload at both depths.
  const auto depth1 = run_at_depth(params, hw, 1, delay_s, model_sets);
  const auto depth2 = run_at_depth(params, hw, 2, delay_s, model_sets);
  for (std::size_t r = 0; r < rounds; ++r) {
    if (depth2.aggregates[r] != depth1.aggregates[r] ||
        depth1.aggregates[r] != model_sum(model_sets[r])) {
      std::printf("FAIL: round %zu aggregate differs between depth 2, "
                  "depth 1, and the model sum\n", r);
      return 1;
    }
  }
  const double d1_rps = double(rounds) / depth1.seconds;
  const double d2_rps = double(rounds) / depth2.seconds;
  const double speedup = depth1.seconds / depth2.seconds;
  std::printf("\n[1] %zu rounds, one session, simulated WAN stage delay "
              "%zu ms\n", rounds, delay_ms);
  std::printf("  depth 1 (serial reference): %8.3f s  %8.1f rounds/s\n",
              depth1.seconds, d1_rps);
  std::printf("  depth 2 (stage overlap):    %8.3f s  %8.1f rounds/s  "
              "(%.2fx)\n", depth2.seconds, d2_rps, speedup);
  std::printf("  aggregates bit-identical across depths and vs the model "
              "sum: OK\n");

  // [2] Telemetry honesty. One session, k queued rounds => exactly one
  // offline-only prologue wave, k-1 overlapped waves, one online-only tail
  // — so in-flight == 2 and stalls == 1, deterministically.
  const auto& st = depth2.stats;
  const double overlap_ratio =
      st.offline_stage_s > 0.0 ? st.offline_hidden_s / st.offline_stage_s
                               : 0.0;
  std::printf("\n[2] depth-2 pipeline telemetry\n");
  std::printf("  rounds in flight %llu (must be 2), stalls %llu (must be "
              "1)\n",
              static_cast<unsigned long long>(st.rounds_in_flight),
              static_cast<unsigned long long>(st.pipeline_stalls));
  std::printf("  offline stage %.3f s, hidden behind online %.3f s "
              "(overlap ratio %.2f)\n",
              st.offline_stage_s, st.offline_hidden_s, overlap_ratio);
  if (st.rounds_in_flight != 2 || st.pipeline_stalls != 1) {
    std::printf("FAIL: wave schedule telemetry is off for a single "
                "%zu-round session\n", rounds);
    return 1;
  }
  if (depth1.stats.rounds_in_flight != 1 ||
      depth1.stats.offline_hidden_s != 0.0) {
    std::printf("FAIL: depth-1 session reported pipelined telemetry\n");
    return 1;
  }

  json.add("pipeline_overlap",
           {{"n", double(n)},
            {"d", double(d)},
            {"rounds", double(rounds)},
            {"stage_delay_ms", double(delay_ms)},
            {"depth1_rounds_per_s", d1_rps},
            {"depth2_rounds_per_s", d2_rps},
            {"depth2_vs_depth1_speedup", speedup},
            {"overlap_ratio", overlap_ratio},
            {"offline_stage_s", st.offline_stage_s},
            {"offline_hidden_s", st.offline_hidden_s},
            {"pipeline_stalls", double(st.pipeline_stalls)},
            {"rounds_in_flight", double(st.rounds_in_flight)},
            {"bit_identical", 1.0}});

  // [3] Compute-only point: no simulated latency, same workload. Not gated
  // — on a single hardware thread the two stages time-slice and the ratio
  // sits near 1x; with real cores idle it tracks the offline fraction.
  const auto c1 = run_at_depth(params, hw, 1, 0.0, model_sets);
  const auto c2 = run_at_depth(params, hw, 2, 0.0, model_sets);
  for (std::size_t r = 0; r < rounds; ++r) {
    if (c2.aggregates[r] != c1.aggregates[r]) {
      std::printf("FAIL: compute-only round %zu differs between depths\n",
                  r);
      return 1;
    }
  }
  const double c_speedup = c1.seconds / c2.seconds;
  std::printf("\n[3] compute-only (no stage delay, informational)\n");
  std::printf("  depth 1: %8.3f s   depth 2: %8.3f s   (%.2fx)\n",
              c1.seconds, c2.seconds, c_speedup);
  json.add("pipeline_compute_only",
           {{"depth1_s", c1.seconds},
            {"depth2_s", c2.seconds},
            {"depth2_vs_depth1_speedup", c_speedup},
            {"bit_identical", 1.0}});

  json.write(json_path);
  return 0;
}
