// Socket-plane bench: the real-socket backend (epoll over UDS/TCP) against
// the in-process ConcurrentRouter on the same frame traffic.
//
// Two experiments:
//
//   * relay throughput — one client streams F frames of one segment each
//     through the hub to a second client (the user->user relay path, the
//     hot edge of the offline mask exchange). Frames/s and payload MB/s
//     for UDS, TCP and the in-process mailbox baseline; the send side must
//     perform ZERO payload copies (counter-enforced) — frames writev
//     straight from pooled buffers.
//
//   * full rounds — N client threads (own SocketTransport each, the same
//     code path as N processes) run complete LightSecAgg rounds against a
//     daemon-shaped hub + RemoteSession; the aggregates must be
//     bit-identical to the serial runtime::Network at the same seed.
//
// Usage: bench_socket [N] [d] [--smoke] [--json <path>]
// Defaults 100 100000; --smoke shrinks to a CI-sized point (8 users,
// d=4096) — the Release CI job gates BENCH_socket.json through
// check_socket_regression.py / socket_tolerance.json.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_common.h"
#include "crypto/prg.h"
#include "protocol/params.h"
#include "runtime/machines.h"
#include "server/remote_session.h"
#include "transport/concurrent_router.h"
#include "transport/socket/socket_addr.h"
#include "transport/socket/socket_transport.h"
#include "transport/stats.h"

namespace {

using namespace lsa::transport::socket;
using lsa::field::Fp32;
using lsa::runtime::MsgType;
using rep = Fp32::rep;
using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<rep> model_for(std::uint64_t seed, std::uint32_t user,
                           std::uint64_t round, std::size_t dim) {
  auto sub = lsa::crypto::derive_subseed(
      lsa::crypto::seed_from_u64(seed ^ (0x5eedull +
                                         user * 0x9e3779b97f4a7c15ull)),
      round);
  lsa::crypto::Prg prg(sub);
  return lsa::field::uniform_vector<Fp32>(dim, prg);
}

struct RelayResult {
  double secs = 0;
  double frames_per_s = 0;
  double mbytes_per_s = 0;
  std::uint64_t send_copies = 0;
};

// One client streams `frames` seg_len-word frames through the hub to a
// second client over `url`.
RelayResult relay_socket(const std::string& url, std::size_t frames,
                         std::size_t seg_len) {
  const SocketAddr listen_addr = SocketAddr::parse(url);
  auto hub = SocketTransport::listen(listen_addr);
  SocketAddr addr = listen_addr;
  if (listen_addr.kind == SocketAddr::Kind::kTcp) {
    addr.port = hub->tcp_port();
  }
  SessionHooks hooks;
  hooks.on_frame = [](const Inbound&) {};
  hooks.on_bind = [](std::uint32_t, bool) {};
  hooks.on_disconnect = [](std::uint32_t) {};
  (void)hub->register_session(0, 2, std::move(hooks));

  const auto before = lsa::transport::snapshot();
  std::atomic<bool> stop{false};
  std::thread hub_thread([&] {
    while (!stop.load(std::memory_order_relaxed)) hub->poll(2);
  });

  std::atomic<bool> receiver_ready{false};
  std::atomic<std::size_t> received{0};
  std::thread receiver([&] {
    auto t = SocketTransport::connect(addr, 0, 1, 2);
    t->set_sink([&](const Inbound&) {
      received.fetch_add(1, std::memory_order_relaxed);
    });
    t->wait_handshake(10'000);
    receiver_ready.store(true);
    while (received.load(std::memory_order_relaxed) < frames) t->poll(5);
  });

  std::vector<rep> payload(seg_len);
  for (std::size_t j = 0; j < seg_len; ++j) {
    payload[j] = static_cast<rep>(j % 65521);
  }
  auto sender = SocketTransport::connect(addr, 0, 0, 2);
  sender->wait_handshake(10'000);
  while (!receiver_ready.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < frames; ++i) {
    sender->send_row(MsgType::kEncodedMaskShare, 0, 1, i,
                     std::span<const rep>(payload));
  }
  sender->flush_pending(30'000);
  receiver.join();
  const double secs = secs_since(t0);
  stop.store(true);
  hub_thread.join();

  const auto after = lsa::transport::snapshot();
  RelayResult r;
  r.secs = secs;
  r.frames_per_s = static_cast<double>(frames) / secs;
  r.mbytes_per_s =
      static_cast<double>(frames) * 4.0 * static_cast<double>(seg_len) /
      secs / 1e6;
  r.send_copies = after.payload_copies - before.payload_copies;
  return r;
}

// Same traffic through the in-process ConcurrentRouter (no kernel, no
// framing-from-stream): the upper bound the socket plane is measured
// against.
RelayResult relay_inproc(std::size_t frames, std::size_t seg_len) {
  lsa::transport::ConcurrentRouter router(2);
  std::vector<rep> payload(seg_len);
  for (std::size_t j = 0; j < seg_len; ++j) {
    payload[j] = static_cast<rep>(j % 65521);
  }
  const auto before = lsa::transport::snapshot();
  const auto t0 = Clock::now();
  std::thread sender([&] {
    for (std::size_t i = 0; i < frames; ++i) {
      router.send_row(MsgType::kEncodedMaskShare, 0, 1, i,
                      std::span<const rep>(payload));
    }
  });
  std::size_t got = 0;
  lsa::transport::Inbound in;
  while (got < frames) {
    if (router.recv_wait(1, in, std::chrono::milliseconds(1000))) ++got;
  }
  const double secs = secs_since(t0);
  sender.join();
  const auto after = lsa::transport::snapshot();
  RelayResult r;
  r.secs = secs;
  r.frames_per_s = static_cast<double>(frames) / secs;
  r.mbytes_per_s =
      static_cast<double>(frames) * 4.0 * static_cast<double>(seg_len) /
      secs / 1e6;
  r.send_copies = after.payload_copies - before.payload_copies;
  return r;
}

struct RoundsResult {
  double secs = 0;
  bool bit_identical = false;
  std::uint64_t send_copies = 0;
};

// N client threads run `rounds` full LightSecAgg rounds against the hub;
// aggregates compared bit-for-bit with the serial reference.
RoundsResult full_rounds(const std::string& url,
                         const lsa::protocol::Params& params,
                         std::uint64_t rounds, std::uint64_t seed) {
  const SocketAddr listen_addr = SocketAddr::parse(url);
  auto hub = SocketTransport::listen(listen_addr);
  SocketAddr addr = listen_addr;
  if (listen_addr.kind == SocketAddr::Kind::kTcp) {
    addr.port = hub->tcp_port();
  }
  lsa::server::RemoteSessionConfig cfg;
  cfg.params = params;
  cfg.rounds = rounds;
  lsa::server::RemoteSession sess(*hub, 0, cfg);

  const auto before = lsa::transport::snapshot();
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (std::uint32_t u = 0; u < params.num_users; ++u) {
    threads.emplace_back([&, u] {
      auto t = SocketTransport::connect(
          addr, 0, u, static_cast<std::uint32_t>(params.num_users));
      lsa::runtime::UserDevice dev(u, params, seed, *t);
      std::int64_t result_round = -1;
      t->set_sink([&](const Inbound& in) {
        dev.handle_view(in.view);
        if (in.view.type == MsgType::kAggregateResult) {
          result_round = static_cast<std::int64_t>(in.view.round);
        }
      });
      for (std::uint64_t r = 0; r < rounds; ++r) {
        dev.start_round(r, model_for(seed, u, r, params.model_dim));
        const auto deadline = Clock::now() + std::chrono::seconds(120);
        while (result_round < static_cast<std::int64_t>(r)) {
          t->poll(5);
          if (!t->connected() || Clock::now() >= deadline) return;
        }
      }
    });
  }
  const auto deadline = Clock::now() + std::chrono::seconds(300);
  while (!sess.done() && Clock::now() < deadline) hub->poll(20);
  for (auto& th : threads) th.join();
  RoundsResult r;
  r.secs = secs_since(t0);
  const auto after = lsa::transport::snapshot();
  r.send_copies = after.payload_copies - before.payload_copies;

  if (!sess.done() || sess.aggregates().size() != rounds) {
    return r;  // bit_identical stays false
  }
  lsa::runtime::Network net(params, seed);
  r.bit_identical = true;
  for (std::uint64_t round = 0; round < rounds; ++round) {
    std::vector<std::vector<rep>> models;
    for (std::uint32_t u = 0; u < params.num_users; ++u) {
      models.push_back(model_for(seed, u, round, params.model_dim));
    }
    const auto want = net.run_round(round, models, {});
    if (want != sess.aggregates()[round]) r.bit_identical = false;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  lsa::bench::JsonReport json("socket");
  std::string json_path = "BENCH_socket.json";
  bool smoke = false;
  std::size_t n = 100;
  std::size_t d = 100'000;
  std::vector<std::size_t> positional;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[a], "--json") == 0 && a + 1 < argc) {
      json_path = argv[++a];
    } else if (argv[a][0] == '-') {
      std::fprintf(stderr,
                   "unknown arg %s (usage: bench_socket [N] [d] [--smoke] "
                   "[--json <path>])\n",
                   argv[a]);
      return 2;
    } else {
      positional.push_back(std::strtoull(argv[a], nullptr, 10));
    }
  }
  if (positional.size() > 0) n = positional[0];
  if (positional.size() > 1) d = positional[1];
  if (smoke) {
    n = 8;
    d = 4096;
  }

  lsa::protocol::Params params;
  params.num_users = n;
  params.privacy = n / 2;
  params.target_survivors = std::max(n / 2 + 1, n * 7 / 10);
  params.dropout = n - params.target_survivors;
  params.model_dim = d;
  params.validate_and_resolve();
  const std::size_t seg_len =
      (d + params.num_segments() - 1) / params.num_segments();
  const std::size_t frames = smoke ? 2'000 : 20'000;

  const std::string uds_url =
      "uds:///tmp/lsa_bench_" + std::to_string(::getpid()) + ".sock";
  const std::string tcp_url = "tcp://127.0.0.1:0";

  std::printf("bench_socket: N=%zu d=%zu seg_len=%zu relay_frames=%zu\n", n,
              d, seg_len, frames);

  const auto inproc = relay_inproc(frames, seg_len);
  std::printf("  relay inproc: %.0f frames/s, %.1f MB/s\n",
              inproc.frames_per_s, inproc.mbytes_per_s);
  json.add("relay_inproc", {{"frames", double(frames)},
                            {"seg_len", double(seg_len)},
                            {"secs", inproc.secs},
                            {"frames_per_s", inproc.frames_per_s},
                            {"mbytes_per_s", inproc.mbytes_per_s}});

  bool failed = false;
  for (const auto& [name, url] :
       {std::pair<std::string, std::string>{"relay_uds", uds_url},
        {"relay_tcp", tcp_url}}) {
    const auto r = relay_socket(url, frames, seg_len);
    const double ratio = r.frames_per_s / inproc.frames_per_s;
    std::printf("  %s: %.0f frames/s, %.1f MB/s (%.3fx inproc), "
                "%llu send copies\n",
                name.c_str(), r.frames_per_s, r.mbytes_per_s, ratio,
                static_cast<unsigned long long>(r.send_copies));
    json.add(name, {{"frames", double(frames)},
                    {"seg_len", double(seg_len)},
                    {"secs", r.secs},
                    {"frames_per_s", r.frames_per_s},
                    {"mbytes_per_s", r.mbytes_per_s},
                    {"send_payload_copies", double(r.send_copies)},
                    {"vs_inproc_fps_ratio", ratio}});
    if (r.send_copies != 0) {
      std::fprintf(stderr, "FAIL: %s performed send-side payload copies\n",
                   name.c_str());
      failed = true;
    }
  }

  const std::uint64_t rounds = 2;
  for (const auto& [name, url] :
       {std::pair<std::string, std::string>{"rounds_uds", uds_url},
        {"rounds_tcp", tcp_url}}) {
    const auto r = full_rounds(url, params, rounds, /*seed=*/42);
    std::printf("  %s: %zu users x %llu rounds in %.2fs, bit_identical=%d, "
                "%llu send copies\n",
                name.c_str(), n, static_cast<unsigned long long>(rounds),
                r.secs, r.bit_identical ? 1 : 0,
                static_cast<unsigned long long>(r.send_copies));
    json.add(name, {{"users", double(n)},
                    {"dim", double(d)},
                    {"rounds", double(rounds)},
                    {"secs", r.secs},
                    {"bit_identical", r.bit_identical ? 1.0 : 0.0},
                    {"send_payload_copies", double(r.send_copies)}});
    if (!r.bit_identical) {
      std::fprintf(stderr, "FAIL: %s aggregates diverged from the serial "
                   "reference\n", name.c_str());
      failed = true;
    }
    if (r.send_copies != 0) {
      std::fprintf(stderr, "FAIL: %s performed send-side payload copies\n",
                   name.c_str());
      failed = true;
    }
  }

  json.write(json_path);
  return failed ? 1 : 0;
}
