// Async buffered-cycle throughput through the unified session runtime.
//
// Three measurements at a paper-scale working point (N users, d model
// entries, buffer K = N/4, Poly(1) staleness):
//
//   1. buffer cycles/s of the legacy single-threaded AsyncNetwork drive
//      (copying Router) vs the same cohorts as AsyncSessions pumped by the
//      sharded server::AggregationServer over the zero-copy transport,
//      with every async aggregate checked bit-identical to its legacy
//      reference (same seed, same scheduled arrivals);
//   2. the one-shot weighted-decode telemetry: plan setup vs streaming
//      seconds and the survivor-set plan-cache hit count — repeated cycles
//      with the same responder set must pay setup once;
//   3. the transport copy counters across the server run — the send side
//      must perform ZERO intermediate payload copies (hard check, same as
//      bench_transport).
//
// A mixed batch (sync rounds + async cycles in ONE drive) is also timed to
// show heterogeneous cohorts sharing the process.
//
// Usage: bench_async_server [N] [d] [async_sessions] [cycles]
//                           [--smoke] [--json <path>]
// Defaults: 64 20000 4 6; --smoke shrinks to a CI-sized point and writes
// BENCH_async.json for the regression gate (check_async_regression.py).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "field/random_field.h"
#include "protocol/params.h"
#include "quant/staleness.h"
#include "runtime/arrival_scheduler.h"
#include "runtime/async_machines.h"
#include "runtime/machines.h"
#include "server/aggregation_server.h"
#include "sys/thread_pool.h"
#include "transport/concurrent_router.h"
#include "transport/stats.h"

namespace {

using lsa::field::Fp32;
using rep = Fp32::rep;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Setup {
  lsa::protocol::Params params;
  std::size_t buffer_k;
  lsa::quant::StalenessPolicy staleness{lsa::quant::StalenessKind::kPolynomial,
                                        1.0};
  std::uint64_t c_g = 1u << 6;
  std::uint64_t seed(std::size_t session) const { return 70 + session; }
  lsa::runtime::ArrivalSchedule schedule(std::size_t session) const {
    return {.seed = 900 + session, .tau_max = 3};
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 64, d = 20000, n_sessions = 4, cycles = 6;
  bool smoke = false;
  const char* json_path = "BENCH_async.json";
  std::size_t pos = 0;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[a], "--json") == 0 && a + 1 < argc) {
      json_path = argv[++a];
    } else if (argv[a][0] == '-') {
      std::fprintf(stderr, "unknown flag %s (usage: bench_async_server "
                   "[N] [d] [async_sessions] [cycles] [--smoke] "
                   "[--json <path>])\n", argv[a]);
      return 2;
    } else {
      char* end = nullptr;
      const std::size_t v = std::strtoull(argv[a], &end, 10);
      if (end == argv[a] || *end != '\0' || v == 0) {
        std::fprintf(stderr, "bad positional argument %s\n", argv[a]);
        return 2;
      }
      if (pos == 0) n = v;
      if (pos == 1) d = v;
      if (pos == 2) n_sessions = v;
      if (pos == 3) cycles = v;
      ++pos;
    }
  }
  if (smoke && pos == 0) {
    n = 16;
    d = 2048;
    n_sessions = 2;
    cycles = 4;
  }

  Setup su;
  su.params.num_users = n;
  su.params.privacy = n / 10;
  su.params.dropout = n - (n * 8) / 10;
  su.params.target_survivors = (n * 8) / 10;
  su.params.model_dim = d;
  su.buffer_k = std::max<std::size_t>(2, n / 4);
  const std::size_t hw =
      std::max<std::size_t>(2, std::thread::hardware_concurrency());

  lsa::bench::JsonReport json("async_server");
  lsa::bench::print_header(
      "Async buffered-cycle sessions through the unified session runtime");
  std::printf("N=%zu d=%zu K=%zu U=%zu, %zu async sessions x %zu cycles, "
              "%zu hw threads%s\n",
              n, d, su.buffer_k, su.params.target_survivors, n_sessions,
              cycles, hw, smoke ? " (smoke)" : "");

  // [1] Legacy single-threaded reference: one AsyncNetwork per cohort,
  // driven cycle by cycle with the same seeded arrival schedule the
  // sessions will consume. Outputs are kept as the bit-exactness oracle.
  std::vector<std::vector<lsa::runtime::AsyncAggregationServer::Output>>
      expected(n_sessions);
  double legacy_secs = 0;
  {
    const auto t0 = Clock::now();
    for (std::size_t s = 0; s < n_sessions; ++s) {
      lsa::runtime::ArrivalScheduler sched(su.schedule(s), n, d, su.buffer_k);
      lsa::runtime::AsyncNetwork net(su.params, su.buffer_k, su.staleness,
                                     su.c_g, su.seed(s));
      for (std::uint64_t c = 0; c < cycles; ++c) {
        expected[s].push_back(net.run_cycle(sched.now_for_cycle(c),
                                            sched.arrivals_for_cycle(c)));
      }
    }
    legacy_secs = seconds_since(t0);
  }
  const double total_cycles = double(n_sessions * cycles);
  std::printf("\n[1] %zu cohorts x %zu cycles\n", n_sessions, cycles);
  std::printf("  legacy AsyncNetwork (copying Router): %8.3f s  %8.1f "
              "cycles/s\n",
              legacy_secs, total_cycles / legacy_secs);

  // [2] The same cohorts as async sessions in the sharded server, one
  // drive pumping all of them over the zero-copy transport.
  double server_secs = 0;
  std::uint64_t copies = 0;
  std::uint64_t plan_builds = 0, plan_reuses = 0;
  double setup_s = 0, stream_s = 0;
  {
    lsa::sys::ThreadPool pool(hw);
    lsa::server::AggregationServer server(&pool);
    std::vector<std::uint64_t> ids;
    for (std::size_t s = 0; s < n_sessions; ++s) {
      lsa::server::AsyncSessionConfig cfg;
      cfg.params = su.params;
      cfg.params.exec.pool = &pool;
      cfg.seed = su.seed(s);
      cfg.buffer_k = su.buffer_k;
      cfg.staleness = su.staleness;
      cfg.c_g = su.c_g;
      cfg.schedule = su.schedule(s);
      ids.push_back(server.open_async_session(cfg));
      server.async_session(ids.back()).enqueue_scheduled_cycles(cycles);
    }
    const auto before = lsa::transport::snapshot();
    const auto t0 = Clock::now();
    server.drive();
    server_secs = seconds_since(t0);
    const auto after = lsa::transport::snapshot();
    copies = after.payload_copies - before.payload_copies;

    for (std::size_t s = 0; s < n_sessions; ++s) {
      const auto& outs = server.async_session(ids[s]).outputs();
      if (outs.size() != cycles) {
        std::printf("FAIL: session %zu completed %zu of %zu cycles\n", s,
                    outs.size(), cycles);
        return 1;
      }
      for (std::size_t c = 0; c < cycles; ++c) {
        if (outs[c].weighted_sum != expected[s][c].weighted_sum ||
            outs[c].weight_sum != expected[s][c].weight_sum) {
          std::printf("FAIL: session %zu cycle %zu differs from the legacy "
                      "single-threaded drive\n", s, c);
          return 1;
        }
      }
      const auto st = server.async_session(ids[s]).stats();
      plan_builds += st.decode_plan_builds;
      plan_reuses += st.decode_plan_reuses;
      setup_s += st.decode_setup_s;
      stream_s += st.decode_stream_s;
    }
  }
  std::printf("  sharded AsyncSessions (zero-copy):    %8.3f s  %8.1f "
              "cycles/s  (%.2fx)\n",
              server_secs, total_cycles / server_secs,
              legacy_secs / server_secs);
  std::printf("  aggregates bit-identical to the legacy drive: OK\n");
  std::printf("  send-side payload copies:             %8llu (must be 0)\n",
              static_cast<unsigned long long>(copies));
  if (copies != 0) {
    std::printf("FAIL: async server drive performed intermediate payload "
                "copies on the send side\n");
    return 1;
  }
  std::printf("\n[2] weighted one-shot decode telemetry (all sessions)\n");
  std::printf("  plan builds: %llu, plan-cache reuses: %llu "
              "(repeated survivor sets pay setup once)\n",
              static_cast<unsigned long long>(plan_builds),
              static_cast<unsigned long long>(plan_reuses));
  std::printf("  decode setup %.3f ms + stream %.3f ms\n", setup_s * 1e3,
              stream_s * 1e3);
  if (plan_reuses < n_sessions * (cycles - 1)) {
    std::printf("FAIL: expected >= %zu plan-cache reuses\n",
                n_sessions * (cycles - 1));
    return 1;
  }
  json.add("async_cycles",
           {{"n", double(n)},
            {"d", double(d)},
            {"sessions", double(n_sessions)},
            {"cycles", total_cycles},
            {"legacy_cycles_per_s", total_cycles / legacy_secs},
            {"sharded_cycles_per_s", total_cycles / server_secs},
            {"speedup_vs_legacy", legacy_secs / server_secs},
            {"send_side_payload_copies", double(copies)},
            {"decode_plan_builds", double(plan_builds)},
            {"decode_plan_reuses", double(plan_reuses)},
            {"decode_setup_s", setup_s},
            {"decode_stream_s", stream_s},
            {"bit_identical", 1.0}});

  // [3] Mixed batch: the same async cohorts plus as many sync cohorts, one
  // run_rounds() drive. Sync aggregates are checked against the
  // single-threaded Network reference.
  std::printf("\n[3] mixed batch: %zu sync rounds + %zu async cycles in one "
              "drive\n",
              n_sessions, n_sessions * cycles);
  std::vector<std::vector<std::vector<rep>>> model_sets(n_sessions);
  for (std::size_t s = 0; s < n_sessions; ++s) {
    lsa::common::Xoshiro256ss mrng(500 + s);
    model_sets[s].resize(n);
    for (auto& m : model_sets[s]) {
      m = lsa::field::uniform_vector<Fp32>(d, mrng);
    }
  }
  std::vector<std::vector<rep>> sync_expected(n_sessions);
  for (std::size_t s = 0; s < n_sessions; ++s) {
    lsa::runtime::Network net(su.params, su.seed(s));
    sync_expected[s] = net.run_round(0, model_sets[s], {});
  }
  double mixed_secs = 0;
  std::uint64_t mixed_copies = 0;
  {
    lsa::sys::ThreadPool pool(hw);
    lsa::server::AggregationServer server(&pool);
    std::vector<lsa::server::AggregationServer::RoundWork> works;
    for (std::size_t s = 0; s < n_sessions; ++s) {
      auto pp = su.params;
      pp.exec.pool = &pool;
      const auto id = server.open_session(
          lsa::server::SessionConfig{.params = pp, .seed = su.seed(s)});
      works.push_back({id, 0, &model_sets[s], {}});

      lsa::server::AsyncSessionConfig cfg;
      cfg.params = pp;
      cfg.seed = su.seed(s);
      cfg.buffer_k = su.buffer_k;
      cfg.staleness = su.staleness;
      cfg.c_g = su.c_g;
      cfg.schedule = su.schedule(s);
      server.async_session(server.open_async_session(cfg))
          .enqueue_scheduled_cycles(cycles);
    }
    const auto before = lsa::transport::snapshot();
    const auto t0 = Clock::now();
    const auto results = server.run_rounds(works);
    mixed_secs = seconds_since(t0);
    const auto after = lsa::transport::snapshot();
    mixed_copies = after.payload_copies - before.payload_copies;
    for (std::size_t s = 0; s < n_sessions; ++s) {
      if (results[s] != sync_expected[s]) {
        std::printf("FAIL: mixed drive sync session %zu differs from the "
                    "Network reference\n", s);
        return 1;
      }
    }
    if (server.rounds_completed() != n_sessions ||
        server.cycles_completed() != n_sessions * cycles) {
      std::printf("FAIL: mixed drive step accounting is off\n");
      return 1;
    }
  }
  std::printf("  one run_rounds() drive:               %8.3f s, "
              "send-side copies %llu (must be 0)\n",
              mixed_secs, static_cast<unsigned long long>(mixed_copies));
  if (mixed_copies != 0) {
    std::printf("FAIL: mixed drive performed send-side payload copies\n");
    return 1;
  }
  std::printf("  sync aggregates bit-identical to the Network reference: "
              "OK\n");
  json.add("mixed_drive", {{"sync_sessions", double(n_sessions)},
                           {"async_sessions", double(n_sessions)},
                           {"seconds", mixed_secs},
                           {"send_side_payload_copies", double(mixed_copies)},
                           {"bit_identical", 1.0}});

  // [4] Mailbox-strategy fan-in comparison: the same async cohorts driven
  // over the mutex-deque reference mailboxes. Outputs must stay
  // bit-identical to the legacy drive (ring == mutex == serial); the
  // cycles/s ratio tracks what the lock-free ring buys the buffered
  // share fan-in end to end.
  std::printf("\n[4] mailbox strategies: lock-free ring vs mutex-deque "
              "reference\n");
  double mutex_secs = 0;
  {
    lsa::sys::ThreadPool pool(hw);
    lsa::server::AggregationServer server(&pool);
    std::vector<std::uint64_t> ids;
    for (std::size_t s = 0; s < n_sessions; ++s) {
      lsa::server::AsyncSessionConfig cfg;
      cfg.params = su.params;
      cfg.params.exec.pool = &pool;
      cfg.seed = su.seed(s);
      cfg.mailbox = lsa::transport::MailboxStrategy::kMutexDeque;
      cfg.buffer_k = su.buffer_k;
      cfg.staleness = su.staleness;
      cfg.c_g = su.c_g;
      cfg.schedule = su.schedule(s);
      ids.push_back(server.open_async_session(cfg));
      server.async_session(ids.back()).enqueue_scheduled_cycles(cycles);
    }
    const auto t0 = Clock::now();
    server.drive();
    mutex_secs = seconds_since(t0);
    for (std::size_t s = 0; s < n_sessions; ++s) {
      const auto& outs = server.async_session(ids[s]).outputs();
      for (std::size_t c = 0; c < cycles; ++c) {
        if (outs[c].weighted_sum != expected[s][c].weighted_sum ||
            outs[c].weight_sum != expected[s][c].weight_sum) {
          std::printf("FAIL: mutex-deque session %zu cycle %zu differs from "
                      "the legacy drive\n", s, c);
          return 1;
        }
      }
    }
  }
  std::printf("  lock-free ring:  %8.3f s  %8.1f cycles/s\n", server_secs,
              total_cycles / server_secs);
  std::printf("  mutex-deque ref: %8.3f s  %8.1f cycles/s  "
              "(ring is %.2fx)\n",
              mutex_secs, total_cycles / mutex_secs,
              mutex_secs / server_secs);
  std::printf("  both strategies bit-identical to the legacy drive: OK\n");
  json.add("mailbox_strategies",
           {{"ring_cycles_per_s", total_cycles / server_secs},
            {"mutex_cycles_per_s", total_cycles / mutex_secs},
            {"ring_vs_mutex", mutex_secs / server_secs},
            {"bit_identical", 1.0}});

  // [5] Steady-state persistent cohorts (params.persistent_cohort): the
  // offline mask encode + share distribution run ONCE per cohort epoch;
  // every later round is masked-upload -> fan-in -> cached-plan decode
  // only. Aggregates stay bit-identical to the per-round protocol (the
  // epoch masks cancel exactly either way), so the comparison below is a
  // hard check, not a tolerance. The gate
  // (check_async_regression.py::steady_state) enforces the zero-setup
  // invariant: offline encodes and plan builds track cohort EPOCHS, not
  // rounds.
  const std::size_t ss_rounds = smoke ? 6 : 10;
  std::printf("\n[5] steady-state persistent cohort: %zu sync rounds, "
              "stable membership\n", ss_rounds);
  double ss_offline_per_user = 0, ss_plan_builds = 0;
  double legacy_round_secs = 0, persist_round_secs = 0;
  {
    auto pp = su.params;
    lsa::server::Session legacy_sess(
        lsa::server::SessionConfig{.params = pp, .seed = su.seed(0)});
    pp.persistent_cohort = true;
    lsa::server::Session persist_sess(
        lsa::server::SessionConfig{.params = pp, .seed = su.seed(0)});
    std::vector<std::vector<std::vector<rep>>> round_models(ss_rounds);
    for (std::size_t r = 0; r < ss_rounds; ++r) {
      lsa::common::Xoshiro256ss mrng(7000 + r);
      round_models[r].resize(n);
      for (auto& m : round_models[r]) {
        m = lsa::field::uniform_vector<Fp32>(d, mrng);
      }
    }
    std::vector<std::vector<rep>> legacy_out(ss_rounds);
    {
      const auto t0 = Clock::now();
      for (std::size_t r = 0; r < ss_rounds; ++r) {
        legacy_out[r] = legacy_sess.run_round(r, round_models[r], {});
      }
      legacy_round_secs = seconds_since(t0) / double(ss_rounds);
    }
    {
      const auto t0 = Clock::now();
      for (std::size_t r = 0; r < ss_rounds; ++r) {
        if (persist_sess.run_round(r, round_models[r], {}) != legacy_out[r]) {
          std::printf("FAIL: persistent-cohort round %zu differs from the "
                      "per-round session\n", r);
          return 1;
        }
      }
      persist_round_secs = seconds_since(t0) / double(ss_rounds);
    }
    const auto pst = persist_sess.stats();
    const auto lst = legacy_sess.stats();
    ss_offline_per_user = double(pst.offline_encodes) / double(n);
    ss_plan_builds = double(pst.decode_plan_builds);
    std::printf("  per-round session:  %8.4f s/round, %llu offline encodes\n",
                legacy_round_secs,
                static_cast<unsigned long long>(lst.offline_encodes));
    std::printf("  persistent cohort:  %8.4f s/round, %llu offline encodes, "
                "%llu plan builds (%.2fx per round)\n",
                persist_round_secs,
                static_cast<unsigned long long>(pst.offline_encodes),
                static_cast<unsigned long long>(pst.decode_plan_builds),
                legacy_round_secs / persist_round_secs);
    std::printf("  aggregates bit-identical to the per-round protocol: OK\n");
    if (pst.offline_encodes != n || pst.decode_plan_builds != 1 ||
        pst.decode_plan_reuses != ss_rounds - 1) {
      std::printf("FAIL: persistent cohort re-ran per-epoch setup "
                  "(%llu encodes, %llu builds, %llu reuses)\n",
                  static_cast<unsigned long long>(pst.offline_encodes),
                  static_cast<unsigned long long>(pst.decode_plan_builds),
                  static_cast<unsigned long long>(pst.decode_plan_reuses));
      return 1;
    }
  }
  // The async leg: the same scheduled cohort as session 0 in [1], run in
  // persistent mode — each arriving user pays its offline encode on its
  // FIRST manifested update only, and every buffered weighted aggregate
  // must still match the legacy per-update drive bit for bit.
  std::uint64_t async_persist_encodes = 0, async_legacy_encodes = 0;
  {
    lsa::sys::ThreadPool pool(hw);
    lsa::server::AggregationServer server(&pool);
    lsa::server::AsyncSessionConfig cfg;
    cfg.params = su.params;
    cfg.params.exec.pool = &pool;
    cfg.params.persistent_cohort = true;
    cfg.seed = su.seed(0);
    cfg.buffer_k = su.buffer_k;
    cfg.staleness = su.staleness;
    cfg.c_g = su.c_g;
    cfg.schedule = su.schedule(0);
    const auto id = server.open_async_session(cfg);
    server.async_session(id).enqueue_scheduled_cycles(cycles);
    server.drive();
    const auto& outs = server.async_session(id).outputs();
    for (std::size_t c = 0; c < cycles; ++c) {
      if (outs[c].weighted_sum != expected[0][c].weighted_sum ||
          outs[c].weight_sum != expected[0][c].weight_sum) {
        std::printf("FAIL: persistent async cycle %zu differs from the "
                    "legacy drive\n", c);
        return 1;
      }
    }
    async_persist_encodes = server.async_session(id).stats().offline_encodes;
  }
  {
    // Legacy encode count for the same schedule: one per submitted update.
    lsa::sys::ThreadPool pool(hw);
    lsa::server::AggregationServer server(&pool);
    lsa::server::AsyncSessionConfig cfg;
    cfg.params = su.params;
    cfg.params.exec.pool = &pool;
    cfg.seed = su.seed(0);
    cfg.buffer_k = su.buffer_k;
    cfg.staleness = su.staleness;
    cfg.c_g = su.c_g;
    cfg.schedule = su.schedule(0);
    const auto id = server.open_async_session(cfg);
    server.async_session(id).enqueue_scheduled_cycles(cycles);
    server.drive();
    async_legacy_encodes = server.async_session(id).stats().offline_encodes;
  }
  std::printf("  async leg: %llu offline encodes persistent vs %llu "
              "per-update (<= one per arriving user), bit-identical: OK\n",
              static_cast<unsigned long long>(async_persist_encodes),
              static_cast<unsigned long long>(async_legacy_encodes));
  if (async_persist_encodes > n ||
      async_persist_encodes > async_legacy_encodes) {
    std::printf("FAIL: persistent async cohort re-encoded epoch shares\n");
    return 1;
  }
  json.add("steady_state",
           {{"n", double(n)},
            {"rounds", double(ss_rounds)},
            {"offline_encodes_per_user", ss_offline_per_user},
            {"plan_builds", ss_plan_builds},
            {"legacy_round_s", legacy_round_secs},
            {"persistent_round_s", persist_round_secs},
            {"round_speedup_vs_per_round",
             legacy_round_secs / persist_round_secs},
            {"async_offline_encodes", double(async_persist_encodes)},
            {"async_legacy_offline_encodes", double(async_legacy_encodes)},
            {"bit_identical", 1.0}});
  json.write(json_path);
  return 0;
}
