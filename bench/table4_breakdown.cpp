// Table 4: breakdown of the running time (sec) of LightSecAgg, SecAgg and
// SecAgg+ training CNN (d = 1,206,590) on FEMNIST with N = 200 users, for
// dropout rates p = 10%, 30%, 50% — non-overlapped and overlapped.
//
// Protocols run functionally at N = 200 (reduced d, exact extrapolation);
// wall times use the paper_stack cost profile (see EXPERIMENTS.md for the
// calibration anchors) and the measured 320 Mb/s bandwidth setting.
#include <cstdio>

#include "bench_common.h"

namespace {

using namespace lsa::bench;

void print_block(bool overlapped) {
  const auto cost = lsa::net::CostModel::paper_stack();
  const auto bw = lsa::net::BandwidthProfile::measured_320mbps();
  std::printf("\n%s implementation\n",
              overlapped ? "Overlapped" : "Non-overlapped");
  std::printf("%-12s %-10s %10s %10s %10s\n", "Protocol", "Phase", "p=10%",
              "p=30%", "p=50%");
  for (auto kind : kAllProtocols) {
    lsa::net::RoundBreakdown rb[3];
    const double rates[3] = {0.1, 0.3, 0.5};
    for (int i = 0; i < 3; ++i) {
      Scenario sc;
      sc.protocol = kind;
      sc.n = 200;
      sc.dropout_rate = rates[i];
      sc.d_real = 1206590;
      sc.train_seconds = 22.8;
      sc.seed = 42 + i;
      rb[i] = run_scenario(sc, cost, bw, paper_opts());
    }
    const char* name = kProtocolNames[static_cast<int>(kind)];
    std::printf("%-12s %-10s %10.1f %10.1f %10.1f\n", name, "Offline",
                rb[0].offline, rb[1].offline, rb[2].offline);
    std::printf("%-12s %-10s %10.1f %10.1f %10.1f\n", "", "Training",
                rb[0].training, rb[1].training, rb[2].training);
    std::printf("%-12s %-10s %10.1f %10.1f %10.1f\n", "", "Uploading",
                rb[0].upload, rb[1].upload, rb[2].upload);
    std::printf("%-12s %-10s %10.1f %10.1f %10.1f\n", "", "Recovery",
                rb[0].recovery, rb[1].recovery, rb[2].recovery);
    if (overlapped) {
      std::printf("%-12s %-10s %10.1f %10.1f %10.1f\n", "", "Total",
                  rb[0].total_overlapped(), rb[1].total_overlapped(),
                  rb[2].total_overlapped());
    } else {
      std::printf("%-12s %-10s %10.1f %10.1f %10.1f\n", "", "Total",
                  rb[0].total_nonoverlapped(), rb[1].total_nonoverlapped(),
                  rb[2].total_nonoverlapped());
    }
  }
}

}  // namespace

int main() {
  print_header(
      "Table 4 — running-time breakdown (sec), CNN/FEMNIST, N = 200\n"
      "paper anchors: SecAgg recovery ~911 s and LightSecAgg recovery ~41 s "
      "at p = 10%");
  print_block(/*overlapped=*/false);
  print_block(/*overlapped=*/true);
  std::printf(
      "\nExpected shape (paper Table 4): SecAgg recovery grows steeply with "
      "p\n(911 -> 1499 -> 2087 s); SecAgg+ moderately (379 -> 437 -> 496 s); "
      "\nLightSecAgg stays low and nearly flat until p = 50%% "
      "(41 -> 41 -> 65 s).\n");
  return 0;
}
