#!/usr/bin/env python3
"""CI gate over BENCH_transport.json (bench_transport --smoke).

Gates on the STRUCTURAL invariants of the transport plane rather than raw
speed (CI machines are noisy): zero send-side payload copies on every
zero-copy path, sharded aggregates bit-identical to the serial Network
under BOTH mailbox strategies (lock-free ring and the mutex-deque
reference), a loose floor on the zero-copy speedup over the seed Router,
and a loose floor on the fan-in contention sweep's ring-vs-mutex ratio —
the knob that catches the lock-free ring path wedging or collapsing.

Usage: check_transport_regression.py BENCH_transport.json transport_tolerance.json
"""
import sys

from check_common import Gate


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    gate = Gate(sys.argv[1], sys.argv[2])
    tol = gate.tolerance

    gate.require_max("fanout", "zero_copy_payload_copies",
                     tol["max_send_side_payload_copies"])
    gate.require_min("fanout", "zero_copy_speedup",
                     tol["min_zero_copy_speedup"])
    for rec in ("multi_session", "multi_session_mutex"):
        gate.require_min(rec, "bit_identical", 1)
        gate.require_max(rec, "send_side_payload_copies",
                         tol["max_send_side_payload_copies"])
    gate.require_min(tol["fanin_record"], "ring_vs_mutex",
                     tol["min_fanin_ring_vs_mutex"])
    return gate.finish("transport-plane")


if __name__ == "__main__":
    sys.exit(main())
