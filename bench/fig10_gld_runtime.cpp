// Figure 10: total running time vs number of users — EfficientNet-B0 on
// GLD-23K, d = 5,288,548 (the training-dominant, high-resolution task).
#include "bench_common.h"

int main() {
  lsa::bench::run_runtime_vs_n("Figure 10",
                               "EfficientNet-B0 / GLD-23K (d = 5,288,548)",
                               5288548, 250.0);
  return 0;
}
