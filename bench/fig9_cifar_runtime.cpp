// Figure 9: total running time vs number of users — MobileNetV3 on
// CIFAR-10, d = 3,111,462.
#include "bench_common.h"

int main() {
  lsa::bench::run_runtime_vs_n("Figure 9",
                               "MobileNetV3 / CIFAR-10 (d = 3,111,462)",
                               3111462, 85.0);
  return 0;
}
