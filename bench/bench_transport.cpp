// Transport-plane throughput: legacy copying Router vs the zero-copy
// ConcurrentRouter, plus the sharded multi-session AggregationServer.
//
// Three measurements at the paper-scale working point (N = 100 users,
// d = 100k model entries → ~5.7 KB share frames):
//
//   1. frames/s of the offline share fan-out (N*(N-1) share frames, each
//      consumed into an arena row at the receiver):
//        a. the SEED Router — a faithful local reproduction of the
//           pre-transport-subsystem path (bitwise CRC-32, global FIFO
//           deque, Message copy + serialize + deserialize). This is the
//           legacy baseline the >=5x acceptance target is measured
//           against: the transport this PR replaces;
//        b. today's Router (same copying shape, slice-by-8 CRC);
//        c. ConcurrentRouter, single thread: zero-copy pooled frames;
//        d. ConcurrentRouter, one cohort per pool worker: aggregate MPSC
//           throughput of the sharded plane (scales with cores).
//   2. bytes copied per round, from the global transport counters — the
//      zero-copy path must report ZERO intermediate payload copies
//      (enforced with a hard check, same as tests/transport_test.cpp).
//   3. a full multi-session LightSecAgg round (with dropout at the U
//      boundary) through server::AggregationServer, checked bit-identical
//      against the single-threaded runtime::Network and timed against it —
//      under BOTH mailbox strategies (the lock-free MPSC ring and the
//      mutex-deque reference), which must agree bit for bit;
//   4. a fan-in contention sweep: M concurrent senders hammer ONE
//      receiver's mailbox (the server-side share fan-in shape of the
//      paper's aggregate-load argument), ring vs mutex — the regime the
//      lock-free ring exists for.
//
// Usage: bench_transport [N] [d] [sessions] [--smoke] [--json <path>]
// Defaults 100 100000 4; --smoke shrinks to a CI-sized point (the Release
// CI gate runs it and checks BENCH_transport.json against
// bench/transport_tolerance.json via check_transport_regression.py).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "field/flat_matrix.h"
#include "field/random_field.h"
#include "protocol/params.h"
#include "runtime/machines.h"
#include "runtime/router.h"
#include "server/aggregation_server.h"
#include "sys/thread_pool.h"
#include "transport/concurrent_router.h"
#include "transport/stats.h"

namespace {

using lsa::field::Fp32;
using rep = Fp32::rep;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The seed repo's wire path, reproduced byte-for-byte: bitwise CRC over
/// the payload, one fresh heap frame per message, payload copied into the
/// Message, into the frame, and back out at delivery.
std::vector<std::uint8_t> seed_serialize(const lsa::runtime::Message& m) {
  using namespace lsa::runtime;
  std::vector<std::uint8_t> buf(kHeaderBytes + 4 * m.payload.size());
  const std::uint32_t crc = crc32_reference(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(m.payload.data()),
      4 * m.payload.size()));
  write_header(buf.data(), m.type, m.sender, m.receiver, m.round,
               static_cast<std::uint32_t>(m.payload.size()), crc);
  std::memcpy(buf.data() + kHeaderBytes, m.payload.data(),
              4 * m.payload.size());
  lsa::transport::counters().note_copy(4 * m.payload.size());
  return buf;
}

lsa::runtime::Message seed_deserialize(std::span<const std::uint8_t> buf) {
  using namespace lsa::runtime;
  const std::uint8_t* p = buf.data() + 16;
  Message m;
  std::memcpy(&m.sender, buf.data() + 4, 4);
  std::uint32_t n = 0;
  std::memcpy(&n, buf.data() + 20, 4);
  std::uint32_t crc_expected = 0;
  std::memcpy(&crc_expected, buf.data() + 24, 4);
  p = buf.data() + kHeaderBytes;
  const std::uint32_t crc_actual =
      crc32_reference(std::span<const std::uint8_t>(p, 4ull * n));
  if (crc_actual != crc_expected) std::abort();
  m.payload.resize(n);
  std::memcpy(m.payload.data(), p, 4ull * n);
  lsa::transport::counters().note_copy(4ull * n);
  for (const auto v : m.payload) {
    if (!Fp32::is_canonical(v)) std::abort();
  }
  return m;
}

double fanout_seed(std::size_t n, std::size_t seg_len,
                   const lsa::field::FlatMatrix<Fp32>& shares) {
  std::deque<std::vector<std::uint8_t>> queue;  // the seed Router's core
  lsa::field::FlatMatrix<Fp32> sink(n, seg_len);
  const auto t0 = Clock::now();
  auto drain = [&] {
    while (!queue.empty()) {
      auto frame = std::move(queue.front());
      queue.pop_front();
      const auto in = seed_deserialize(frame);
      auto dst = sink.row(in.sender);
      std::copy(in.payload.begin(), in.payload.end(), dst.begin());
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      lsa::runtime::Message m;
      m.type = lsa::runtime::MsgType::kEncodedMaskShare;
      m.sender = static_cast<std::uint32_t>(i);
      m.receiver = static_cast<std::uint32_t>(j);
      m.payload.assign(shares.row(i).begin(), shares.row(i).end());
      lsa::transport::counters().note_copy(4 * seg_len);
      queue.push_back(seed_serialize(m));
    }
    drain();
  }
  drain();
  return seconds_since(t0);
}

/// One cohort's offline share fan-out: every user ships one seg_len-row to
/// every other user; receivers consume each frame into an arena row.
/// Returns wall time; the copy counters are read by the caller.
double fanout_legacy(std::size_t n, std::size_t seg_len,
                     const lsa::field::FlatMatrix<Fp32>& shares) {
  lsa::runtime::Router router(n);
  lsa::field::FlatMatrix<Fp32> sink(n, seg_len);
  const auto t0 = Clock::now();
  lsa::runtime::Message in;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      lsa::runtime::Message m;
      m.type = lsa::runtime::MsgType::kEncodedMaskShare;
      m.sender = static_cast<std::uint32_t>(i);
      m.receiver = static_cast<std::uint32_t>(j);
      m.payload.assign(shares.row(i).begin(), shares.row(i).end());
      lsa::transport::counters().note_copy(4 * seg_len);
      router.send(m);
    }
    // Drain as we go (mirrors a live server; also bounds queue memory).
    while (router.deliver_next(in)) {
      auto dst = sink.row(in.sender);
      std::copy(in.payload.begin(), in.payload.end(), dst.begin());
    }
  }
  while (router.deliver_next(in)) {
    auto dst = sink.row(in.sender);
    std::copy(in.payload.begin(), in.payload.end(), dst.begin());
  }
  return seconds_since(t0);
}

double fanout_zero_copy(std::size_t n, std::size_t seg_len,
                        const lsa::field::FlatMatrix<Fp32>& shares) {
  lsa::transport::ConcurrentRouter router(n, 4 * n);
  lsa::field::FlatMatrix<Fp32> sink(n, seg_len);
  const auto t0 = Clock::now();
  lsa::transport::Inbound in;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      router.send_row(lsa::runtime::MsgType::kEncodedMaskShare,
                      static_cast<std::uint32_t>(i),
                      static_cast<std::uint32_t>(j), 0, shares.row(i));
    }
    for (std::size_t r = 0; r < n; ++r) {
      while (router.try_recv(r, in)) {
        auto dst = sink.row(in.view.sender);
        std::copy(in.view.payload.begin(), in.view.payload.end(),
                  dst.begin());
        in.buf.reset();
      }
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    while (router.try_recv(r, in)) {
      auto dst = sink.row(in.view.sender);
      std::copy(in.view.payload.begin(), in.view.payload.end(), dst.begin());
      in.buf.reset();
    }
  }
  return seconds_since(t0);
}

/// Fan-in contention: M senders burst-enqueue into ONE receiver's mailbox.
/// The timed phase is the ENQUEUE burst alone — every sender parks on a
/// start latch, the clock runs from release to last-send-done, and the
/// drain is verified untimed afterwards — so the sweep isolates M threads
/// hammering one mailbox's admission path (the contention the lock-free
/// ring exists to cut), not thread spawn, consumer scheduling, or
/// backpressure parking (that discipline has its own tests and is
/// identical per strategy: park, one wake per freed slot). Capacity
/// covers the whole burst so no producer ever blocks.
double fanin_contention(std::size_t senders, std::uint32_t frames_each,
                        std::size_t payload_elems,
                        lsa::transport::MailboxStrategy strategy) {
  const std::uint64_t total = std::uint64_t{senders} * frames_each;
  // TWO parties only (mailbox capacity is per receiver, and a router of
  // M+1 parties would allocate M unused burst-deep sender mailboxes):
  // every sender thread stamps party 0 — the admission path carries no
  // per-sender state, so sender identity is irrelevant to the contention
  // being measured. Freelist sized to the burst + a warmup pass: after
  // it, every acquire recycles, so the timed phase exercises the mailbox
  // engine, not malloc.
  lsa::transport::ConcurrentRouter router(
      2, /*queue_capacity=*/total, strategy, /*pool_retain=*/total);
  const std::uint32_t receiver = 1;
  const std::vector<rep> payload(payload_elems, 3);
  {
    lsa::transport::Inbound in;
    for (std::uint64_t k = 0; k < total; ++k) {
      router.send_row(lsa::runtime::MsgType::kMaskedModel, 0, receiver, k,
                      std::span<const rep>(payload));
    }
    while (router.try_recv(receiver, in)) in.buf.reset();
  }

  std::mutex latch_mu;
  std::condition_variable latch_cv;
  bool go = false;
  std::vector<std::thread> threads;
  threads.reserve(senders);
  for (std::size_t s = 0; s < senders; ++s) {
    threads.emplace_back([&] {
      {
        std::unique_lock<std::mutex> lk(latch_mu);
        latch_cv.wait(lk, [&] { return go; });
      }
      for (std::uint32_t k = 0; k < frames_each; ++k) {
        router.send_row(lsa::runtime::MsgType::kMaskedModel, /*sender=*/0,
                        receiver, k, std::span<const rep>(payload));
      }
    });
  }
  const auto t0 = Clock::now();
  {
    std::lock_guard<std::mutex> lk(latch_mu);
    go = true;
  }
  latch_cv.notify_all();
  for (auto& t : threads) t.join();
  const double secs = seconds_since(t0);

  // Untimed verification drain: frame CONSERVATION only (every enqueue
  // arrived exactly once). Per-link ordering is not meaningful here — all
  // threads stamp sender 0 — and is pinned by mailbox_stress_test instead.
  std::uint64_t got = 0;
  lsa::transport::Inbound in;
  while (router.try_recv(receiver, in)) {
    in.buf.reset();
    ++got;
  }
  if (got != total) {
    std::printf("FAIL: fan-in sweep delivered %llu of %llu frames\n",
                static_cast<unsigned long long>(got),
                static_cast<unsigned long long>(total));
    std::exit(1);
  }
  return secs;
}

void print_row(const char* name, std::uint64_t frames, double secs,
               std::uint64_t copies, std::uint64_t copied_bytes,
               double baseline_fps) {
  const double fps = static_cast<double>(frames) / secs;
  std::printf("  %-34s %10.0f frames/s  %6.2fx  %8llu copies  %9.2f MB copied\n",
              name, fps, fps / baseline_fps,
              static_cast<unsigned long long>(copies),
              static_cast<double>(copied_bytes) / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  lsa::bench::JsonReport json("transport");
  std::size_t n = 100, d = 100000, n_sessions = 4;
  bool smoke = false;
  const char* json_path = "BENCH_transport.json";
  std::size_t pos = 0;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[a], "--json") == 0 && a + 1 < argc) {
      json_path = argv[++a];
    } else if (argv[a][0] == '-') {
      std::fprintf(stderr, "unknown flag %s (usage: bench_transport [N] [d] "
                   "[sessions] [--smoke] [--json <path>])\n", argv[a]);
      return 2;
    } else {
      const std::size_t v = std::strtoull(argv[a], nullptr, 10);
      if (pos == 0) n = v;
      if (pos == 1) d = v;
      if (pos == 2) n_sessions = v;
      ++pos;
    }
  }
  if (smoke && pos == 0) {
    n = 16;
    d = 2048;
    n_sessions = 2;
  }
  const std::size_t t = n / 10;
  const std::size_t u = (n * 8) / 10;
  const std::size_t seg_len = (d + (u - t) - 1) / (u - t);
  const std::size_t hw = std::max<std::size_t>(
      2, std::thread::hardware_concurrency());

  std::printf("transport bench: N=%zu d=%zu seg_len=%zu (%zu-byte frames), "
              "%zu hw threads\n",
              n, d, seg_len, 4 * seg_len + lsa::runtime::kHeaderBytes, hw);

  // Shared share arena all drivers ship rows from.
  lsa::common::Xoshiro256ss rng(1);
  lsa::field::FlatMatrix<Fp32> shares(n, seg_len);
  for (std::size_t i = 0; i < n; ++i) {
    lsa::field::fill_uniform<Fp32>(shares.row(i), rng);
  }
  const std::uint64_t frames_per_cohort = n * (n - 1);

  std::printf("\n[1] offline share fan-out, %llu frames per cohort\n",
              static_cast<unsigned long long>(frames_per_cohort));

  auto before = lsa::transport::snapshot();
  const double seed_secs = fanout_seed(n, seg_len, shares);
  auto after = lsa::transport::snapshot();
  const double legacy_fps =
      static_cast<double>(frames_per_cohort) / seed_secs;
  print_row("seed Router (bitwise CRC) [base]", frames_per_cohort, seed_secs,
            after.payload_copies - before.payload_copies,
            after.payload_bytes_copied - before.payload_bytes_copied,
            legacy_fps);

  before = lsa::transport::snapshot();
  const double router_secs = fanout_legacy(n, seg_len, shares);
  after = lsa::transport::snapshot();
  print_row("Router (slice-by-8 CRC)", frames_per_cohort, router_secs,
            after.payload_copies - before.payload_copies,
            after.payload_bytes_copied - before.payload_bytes_copied,
            legacy_fps);

  before = lsa::transport::snapshot();
  const double zc_secs = fanout_zero_copy(n, seg_len, shares);
  after = lsa::transport::snapshot();
  const std::uint64_t zc_copies = after.payload_copies - before.payload_copies;
  print_row("ConcurrentRouter (zero-copy, 1T)", frames_per_cohort, zc_secs,
            zc_copies, after.payload_bytes_copied - before.payload_bytes_copied,
            legacy_fps);
  if (zc_copies != 0) {
    std::printf("FAIL: zero-copy path performed %llu payload copies\n",
                static_cast<unsigned long long>(zc_copies));
    return 1;
  }
  const double zc_fps = static_cast<double>(frames_per_cohort) / zc_secs;
  std::printf("  zero-copy speedup over the legacy (seed) Router: %.2fx %s\n",
              zc_fps / legacy_fps,
              zc_fps >= 5.0 * legacy_fps ? "(>=5x target met)"
                                         : "(<5x target MISSED)");
  json.add("fanout", {{"n", double(n)},
                      {"d", double(d)},
                      {"seed_router_fps", legacy_fps},
                      {"slice8_router_fps",
                       double(frames_per_cohort) / router_secs},
                      {"zero_copy_fps", zc_fps},
                      {"zero_copy_speedup", zc_fps / legacy_fps},
                      {"zero_copy_payload_copies", double(zc_copies)}});

  // Sharded plane: one cohort per pool worker, aggregate throughput.
  {
    lsa::sys::ThreadPool pool(hw);
    before = lsa::transport::snapshot();
    const auto t0 = Clock::now();
    pool.parallel_for(
        hw, [&](std::size_t) { (void)fanout_zero_copy(n, seg_len, shares); },
        /*grain=*/1);
    const double sharded_secs = seconds_since(t0);
    after = lsa::transport::snapshot();
    print_row("ConcurrentRouter (sharded)", frames_per_cohort * hw,
              sharded_secs, after.payload_copies - before.payload_copies,
              after.payload_bytes_copied - before.payload_bytes_copied,
              legacy_fps);
    const double sharded_fps =
        static_cast<double>(frames_per_cohort * hw) / sharded_secs;
    std::printf("  sharded speedup over the legacy (seed) Router: %.2fx\n",
                sharded_fps / legacy_fps);
    json.add("fanout_sharded", {{"workers", double(hw)},
                                {"fps", sharded_fps},
                                {"speedup_vs_seed",
                                 sharded_fps / legacy_fps}});
  }

  // [2] full multi-session rounds through the sharded server, checked
  // bit-identical against the single-threaded Network reference. Dropout
  // sits at the U boundary: exactly N - U users crash after upload.
  std::printf("\n[2] multi-session LightSecAgg rounds, %zu sessions "
              "(N=%zu d=%zu, dropout at U boundary)\n",
              n_sessions, n, d);
  lsa::protocol::Params p;
  p.num_users = n;
  p.privacy = t;
  p.dropout = n - u;
  p.target_survivors = u;
  p.model_dim = d;

  std::vector<std::size_t> crash;
  for (std::size_t k = 0; k < n - u; ++k) crash.push_back(k * 2 + 1);

  std::vector<std::vector<std::vector<rep>>> model_sets(n_sessions);
  for (std::size_t s = 0; s < n_sessions; ++s) {
    lsa::common::Xoshiro256ss mrng(900 + s);
    model_sets[s].resize(n);
    for (auto& m : model_sets[s]) {
      m = lsa::field::uniform_vector<Fp32>(d, mrng);
    }
  }

  double serial_secs = 0;
  std::vector<std::vector<rep>> expected(n_sessions);
  {
    const auto t0 = Clock::now();
    for (std::size_t s = 0; s < n_sessions; ++s) {
      lsa::runtime::Network net(p, /*seed=*/70 + s);
      expected[s] = net.run_round(0, model_sets[s], crash);
    }
    serial_secs = seconds_since(t0);
  }
  std::printf("  single-threaded Network x%zu:      %8.3f s\n", n_sessions,
              serial_secs);

  // Both mailbox strategies drive the same rounds: the lock-free ring is
  // the production engine, the mutex deque the tested reference — results
  // must be bit-identical to the serial Network under BOTH.
  for (const auto strategy : {lsa::transport::MailboxStrategy::kLockFreeRing,
                              lsa::transport::MailboxStrategy::kMutexDeque}) {
    lsa::sys::ThreadPool pool(hw);
    lsa::server::AggregationServer server(&pool);
    std::vector<lsa::server::AggregationServer::RoundWork> works;
    for (std::size_t s = 0; s < n_sessions; ++s) {
      auto pp = p;
      pp.exec.pool = &pool;
      const auto id = server.open_session(
          lsa::server::SessionConfig{.params = pp,
                                     .seed = 70 + s,
                                     .mailbox = strategy});
      works.push_back({id, 0, &model_sets[s], crash});
    }
    before = lsa::transport::snapshot();
    const auto t0 = Clock::now();
    const auto results = server.run_rounds(works);
    const double sharded_secs = seconds_since(t0);
    after = lsa::transport::snapshot();
    std::printf("  sharded AggregationServer (%s): %8.3f s  (%.2fx)\n",
                lsa::transport::to_string(strategy), sharded_secs,
                serial_secs / sharded_secs);
    std::printf("  send-side payload copies:         %8llu (must be 0)\n",
                static_cast<unsigned long long>(after.payload_copies -
                                                before.payload_copies));
    for (std::size_t s = 0; s < n_sessions; ++s) {
      if (results[s] != expected[s]) {
        std::printf("FAIL: session %zu aggregate differs from the "
                    "single-threaded reference (%s)\n", s,
                    lsa::transport::to_string(strategy));
        return 1;
      }
    }
    if (after.payload_copies != before.payload_copies) {
      std::printf("FAIL: sharded round performed intermediate payload "
                  "copies\n");
      return 1;
    }
    std::printf("  aggregates bit-identical to the serial reference: OK\n");
    const bool ring =
        strategy == lsa::transport::MailboxStrategy::kLockFreeRing;
    json.add(ring ? "multi_session" : "multi_session_mutex",
             {{"sessions", double(n_sessions)},
              {"serial_s", serial_secs},
              {"sharded_s", sharded_secs},
              {"speedup", serial_secs / sharded_secs},
              {"send_side_payload_copies",
               double(after.payload_copies - before.payload_copies)},
              {"bit_identical", 1.0}});
  }

  // [3] Fan-in contention sweep: M senders into ONE mailbox. This is the
  // server's share fan-in at scale, and the regime where the mutex
  // mailbox serializes every enqueue; the lock-free ring must pull ahead
  // as M grows (acceptance: ring >= mutex at M >= 500 in the full sweep).
  {
    const std::vector<std::size_t> sweep =
        smoke ? std::vector<std::size_t>{16, 64}
              : std::vector<std::size_t>{100, 250, 500, 1000};
    const std::size_t payload_elems = 8;
    std::printf("\n[3] fan-in contention sweep (%zu-elem frames, one "
                "receiver)\n", payload_elems);
    std::printf("  %8s %14s %14s %10s\n", "senders", "ring fr/s",
                "mutex fr/s", "ring/mutex");
    // Interleaved best-of-R per point: scheduler noise on shared hosts
    // dwarfs the per-op engine delta in any single run; the fastest rep is
    // the least-polluted measurement of each engine's admission path.
    const int reps = smoke ? 3 : 5;
    for (const std::size_t m : sweep) {
      const auto frames_each = static_cast<std::uint32_t>(
          std::max<std::size_t>(smoke ? 50 : 25, (smoke ? 6000 : 60000) / m));
      const std::uint64_t total = std::uint64_t{m} * frames_each;
      double ring_secs = 1e30, mutex_secs = 1e30;
      for (int r = 0; r < reps; ++r) {
        ring_secs = std::min(
            ring_secs,
            fanin_contention(m, frames_each, payload_elems,
                             lsa::transport::MailboxStrategy::kLockFreeRing));
        mutex_secs = std::min(
            mutex_secs,
            fanin_contention(m, frames_each, payload_elems,
                             lsa::transport::MailboxStrategy::kMutexDeque));
      }
      const double ring_fps = double(total) / ring_secs;
      const double mutex_fps = double(total) / mutex_secs;
      std::printf("  %8zu %14.0f %14.0f %9.2fx\n", m, ring_fps, mutex_fps,
                  ring_fps / mutex_fps);
      json.add("fanin_contention_" + std::to_string(m),
               {{"senders", double(m)},
                {"frames", double(total)},
                {"ring_fps", ring_fps},
                {"mutex_fps", mutex_fps},
                {"ring_vs_mutex", ring_fps / mutex_fps}});
      // Self-enforced collapse floor at high fan-in: the ring must stay in
      // the mutex reference's league at M >= 500 — the regime where a wake
      // or admission regression (e.g. notify_one reverting to the
      // notify_all thundering herd, which cost ~100x here) shows first.
      // 0.75 tolerates scheduler jitter on shared single-core hosts, where
      // the engines otherwise measure within a few percent; any real
      // collapse lands far below it.
      if (m >= 500 && ring_fps < 0.75 * mutex_fps) {
        std::printf("FAIL: lock-free ring collapsed to %.2fx of the mutex "
                    "mailbox at %zu senders\n", ring_fps / mutex_fps, m);
        return 1;
      }
    }
  }
  json.write(json_path);
  return 0;
}
