// Table 6 (Appendix C): total randomness generation and per-user offline
// storage of LightSecAgg vs the trusted-third-party one-shot scheme of
// Zhao & Sun (2021), in units of F^(d/(U-T)) symbols.
//
//   Zhao-Sun total randomness: N(U-T) + T * sum_{u=U}^{N} C(N,u)
//   LightSecAgg total:         N * U
//   Zhao-Sun storage per user: (U-T) + sum_{u=U}^{N} C(N,u) * u / N
//   LightSecAgg per user:      (U-T) + N
//
// The binomial sum explodes exponentially — exactly the paper's point — so
// large values are printed in scientific notation (computed via lgamma).
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "protocol/zhao_sun.h"

namespace {

double log_choose(double n, double k) {
  return std::lgamma(n + 1) - std::lgamma(k + 1) - std::lgamma(n - k + 1);
}

double sum_binomials(std::size_t n, std::size_t from) {
  double s = 0;
  for (std::size_t u = from; u <= n; ++u) {
    s += std::exp(log_choose(static_cast<double>(n), static_cast<double>(u)));
  }
  return s;
}

double sum_binomials_weighted(std::size_t n, std::size_t from) {
  double s = 0;
  for (std::size_t u = from; u <= n; ++u) {
    s += std::exp(log_choose(static_cast<double>(n),
                             static_cast<double>(u))) *
         static_cast<double>(u) / static_cast<double>(n);
  }
  return s;
}

}  // namespace

int main() {
  using namespace lsa::bench;
  print_header(
      "Table 6 (App. C) — randomness & storage vs Zhao-Sun (2021), in "
      "F^(d/(U-T)) symbols\nT = N/2, U = 0.7N");

  std::printf("%-6s %-6s %-6s | %-24s %-14s | %-24s %-14s\n", "N", "T", "U",
              "Zhao-Sun total random", "LSA total", "Zhao-Sun store/user",
              "LSA store/user");
  for (std::size_t n : {10, 20, 40, 80, 100, 200}) {
    const std::size_t t = n / 2;
    const std::size_t u =
        std::max(t + 1, static_cast<std::size_t>(0.7 * double(n)));
    const double zs_total = double(n) * double(u - t) +
                            double(t) * sum_binomials(n, u);
    const double lsa_total = double(n) * double(u);
    const double zs_store = double(u - t) + sum_binomials_weighted(n, u);
    const double lsa_store = double(u - t) + double(n);
    std::printf("%-6zu %-6zu %-6zu | %24.4g %14.4g | %24.4g %14.4g\n", n, t,
                u, zs_total, lsa_total, zs_store, lsa_store);
  }
  std::printf(
      "\nExpected shape (paper Table 6): the Zhao-Sun scheme's randomness "
      "and\nper-user storage grow exponentially in N (binomial sums over "
      "dropout\npatterns) and require a trusted third party to generate; "
      "LightSecAgg's\ngrow linearly and are generated locally.\n");

  // -------------------------------------------------------------------
  // Measured section: the scheme is actually implemented
  // (protocol/zhao_sun.h); at small N the counters come from a real TTP
  // setup and the wall time shows the exponential blow-up directly.
  // -------------------------------------------------------------------
  print_header(
      "Table 6 (measured) — real Zhao-Sun TTP setup vs closed forms\n"
      "(protocol executed functionally; counters read from the object)");
  std::printf("%-4s %-4s %-4s | %-10s %-14s %-14s | %-12s\n", "N", "T", "U",
              "subsets", "random(sym)", "store/user", "setup(s)");
  using ZS = lsa::protocol::ZhaoSunOneShot<lsa::field::Fp32>;
  for (std::size_t n : {8, 10, 12, 14, 16}) {
    const std::size_t t = n / 2;
    const std::size_t u =
        std::max(t + 1, static_cast<std::size_t>(0.7 * double(n)));
    lsa::protocol::Params params;
    params.num_users = n;
    params.privacy = t;
    params.dropout = n - u;
    params.target_survivors = u;
    params.model_dim = 64;
    lsa::common::Stopwatch sw;
    ZS proto(params, 1234 + n);
    const double setup_s = sw.elapsed_sec();
    std::printf("%-4zu %-4zu %-4zu | %-10llu %-14llu %-14llu | %12.4f\n", n,
                t, u,
                static_cast<unsigned long long>(proto.num_subsets()),
                static_cast<unsigned long long>(
                    proto.total_randomness_symbols()),
                static_cast<unsigned long long>(proto.storage_symbols(0)),
                setup_s);
  }
  std::printf(
      "\nReading: setup wall-time and storage double with every ~+2 users —\n"
      "the exponential regime the closed forms above predict. LightSecAgg\n"
      "needs no TTP and its offline phase is linear in N (see Table 1).\n");
  return 0;
}
