#!/usr/bin/env python3
"""CI gate over BENCH_pipeline.json (bench_pipeline --smoke).

Asserts the pipelined (Params::pipeline == 2) drive still overlaps the
offline stage with the previous round's online stage on the latency-bound
shape: a rounds/s floor vs the depth-1 serial reference, an overlap-ratio
floor (offline wall time actually hidden), and the bit-identity flag the
bench hard-checks before writing the report. Tolerances live in
bench/pipeline_tolerance.json and are loose relative to the measured
numbers (CI machines are noisy); they catch the pipeline collapsing back
to serial, not single-digit drift.

Usage: check_pipeline_regression.py BENCH_pipeline.json pipeline_tolerance.json
"""
import sys

from check_common import Gate


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    gate = Gate(sys.argv[1], sys.argv[2])
    tol = gate.tolerance

    gate.require_min("pipeline_overlap", "depth2_vs_depth1_speedup",
                     tol["min_depth2_vs_depth1_speedup"])
    gate.require_min("pipeline_overlap", "overlap_ratio",
                     tol["min_overlap_ratio"])
    gate.require_min("pipeline_overlap", "bit_identical",
                     tol["min_bit_identical"])
    gate.require_min("pipeline_compute_only", "bit_identical",
                     tol["min_bit_identical"])
    return gate.finish("pipelined-rounds perf")


if __name__ == "__main__":
    sys.exit(main())
